"""The Grid: user-facing assembly of sites, proxies, CA and services.

Builds the runtime the paper describes: a CA for the whole grid, one
proxy per site (more are accepted), a full mesh of secure tunnels between
proxies, shared user/permission databases checked at both ends, and MPI
execution over the proxy multiplexer.

Two transports are supported:

* ``"inproc"`` (default) — everything inside one process over the
  in-process fabric; fast and deterministic for tests and examples;
* ``"tcp"`` — proxies listen on real localhost sockets, demonstrating
  the identical code path over an actual network stack.
"""

from __future__ import annotations

import itertools
import secrets
import threading
import time
from typing import Any, Callable, Optional, Sequence

from repro.control.accounting import UsageLedger
from repro.control.retry import RetryPolicy
from repro.core.protocol import Op
from repro.core.proxy import ProxyServer
from repro.core.routing import GridDirectory
from repro.core.site import Site, TaskRegistry
from repro.mpi.communicator import Communicator
from repro.mpi.launcher import MpiJobResult
from repro.security.auth import AccessControlList, UserDirectory
from repro.security.ca import CertificationAuthority
from repro.security.rsa import RsaKeyPair
from repro.security.tickets import TicketService
from repro.security.tokens import TokenService, auth_mode
from repro.transport.inproc import InprocFabric
from repro.transport.reactor import (
    ReactorTcpListener,
    connect_tcp_reactor,
    io_mode,
)
from repro.transport.tcp import TcpListener, connect_tcp

__all__ = ["Grid", "GridError"]

_app_ids = itertools.count(1)


class GridError(Exception):
    """Grid construction or job execution failure."""


class Grid:
    """A computational grid of proxy-fronted sites.

    >>> grid = Grid()
    >>> site = grid.add_site("siteA", nodes=2)
    >>> grid.connect_all()
    >>> result = grid.run_mpi(lambda comm: comm.rank, nprocs=2)
    >>> result.returns
    [0, 1]
    """

    def __init__(
        self,
        transport: str = "inproc",
        clock: Optional[Callable[[], float]] = None,
        key_bits: int = 512,
        channel_wrapper: Optional[Callable[[Any], Any]] = None,
        handshake_retry: Optional[RetryPolicy] = None,
        io: Optional[str] = None,
        heartbeat_interval: Optional[float] = None,
    ):
        """``channel_wrapper`` interposes on every dialed raw channel —
        the chaos suite injects faults there; ``handshake_retry`` governs
        redials when a tunnel handshake is interrupted mid-flight.

        ``io`` selects the I/O engine (``"reactor"`` | ``"threaded"``,
        default from ``$REPRO_IO``); ``heartbeat_interval`` arms each
        proxy's jittered heartbeat timer on the shared reactor so the
        failure detectors run without caller discipline."""
        if transport not in ("inproc", "tcp"):
            raise GridError(f"unknown transport: {transport!r}")
        self.transport = transport
        self.io = io_mode(io)
        self.heartbeat_interval = heartbeat_interval
        self.clock = clock or time.time
        self.key_bits = key_bits
        self.channel_wrapper = channel_wrapper
        self.handshake_retry = handshake_retry or RetryPolicy(
            max_attempts=5, base_delay=0.02, max_delay=0.5
        )
        self.ca = CertificationAuthority(key_bits=key_bits, clock=self.clock)
        self.directory = GridDirectory()
        self.users = UserDirectory()
        self.acl = AccessControlList(self.users)
        self.tickets = TicketService(
            self.users, self.clock, key_bits=key_bits
        )
        self.ledger = UsageLedger(clock=self.clock)
        self.sites: dict[str, Site] = {}
        self.proxies: dict[str, ProxyServer] = {}
        self._fabric = InprocFabric()
        self._tcp_listeners: dict[str, TcpListener] = {}
        self._connected_pairs: set[tuple[str, str]] = set()
        self._lock = threading.Lock()
        self._shard_managers: list[Any] = []
        #: grid-wide HMAC token key (set by enable_token_auth); every
        #: proxy's TokenService replica shares it, so a token minted at
        #: one proxy verifies at all of them
        self._token_key: Optional[bytes] = None
        self._token_kwargs: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_site(
        self,
        name: str,
        nodes: int = 1,
        node_speed: float = 1.0,
        node_speeds: Optional[Sequence[float]] = None,
        tasks: Optional[TaskRegistry] = None,
    ) -> Site:
        """Create a site with ``nodes`` stations and its border proxy."""
        if name in self.sites:
            raise GridError(f"duplicate site name: {name!r}")
        if nodes <= 0 and node_speeds is None:
            raise GridError(f"site needs at least one node: {nodes}")
        site = Site(name=name)
        speeds = list(node_speeds) if node_speeds is not None else [node_speed] * nodes
        for index, speed in enumerate(speeds):
            site.add_node(f"{name}.n{index}", cpu_speed=speed, tasks=tasks)

        proxy_name = f"proxy.{name}"
        keypair = RsaKeyPair.generate(self.key_bits)
        certificate = self.ca.issue(proxy_name, "proxy", keypair.public)
        address = self._make_address(proxy_name)
        self.directory.register_site(name, proxy_name, address)
        for node_name in site.node_names():
            self.directory.register_node(node_name, name)

        proxy = ProxyServer(
            name=proxy_name,
            site=site,
            keypair=keypair,
            certificate=certificate,
            trust_anchor=self.ca.public_key,
            clock=self.clock,
            directory=self.directory,
            users=self.users,
            acl=self.acl,
            io=self.io,
        )
        proxy.ledger = self.ledger
        self._attach_tokens(proxy)
        self._start_listening(proxy, address)
        self.sites[name] = site
        self.proxies[proxy_name] = proxy
        return site

    def add_extra_proxy(self, site_name: str) -> ProxyServer:
        """Add a redundant proxy to an existing site.

        "Configurations with more than one proxy server per site are also
        accepted": the extra proxy fronts the same stations with its own
        certificate and listener.  After :meth:`connect_all`, peers hold
        tunnels to every proxy of the site, and remote operations fail
        over to the next proxy when one dies.
        """
        if site_name not in self.sites:
            raise GridError(f"unknown site: {site_name!r}")
        site = self.sites[site_name]
        index = len(self.directory.proxies_of_site(site_name))
        proxy_name = f"proxy.{site_name}.{index}"
        keypair = RsaKeyPair.generate(self.key_bits)
        certificate = self.ca.issue(proxy_name, "proxy", keypair.public)
        address = self._make_address(proxy_name)
        self.directory.register_extra_proxy(site_name, proxy_name, address)
        proxy = ProxyServer(
            name=proxy_name,
            site=site,
            keypair=keypair,
            certificate=certificate,
            trust_anchor=self.ca.public_key,
            clock=self.clock,
            directory=self.directory,
            users=self.users,
            acl=self.acl,
            io=self.io,
        )
        proxy.ledger = self.ledger
        self._attach_tokens(proxy)
        self._start_listening(proxy, address)
        self.proxies[proxy_name] = proxy
        return proxy

    def _make_address(self, proxy_name: str) -> str:
        if self.transport == "inproc":
            return f"{proxy_name}.tunnel"
        if self.io == "reactor":
            listener: TcpListener = ReactorTcpListener()
        else:
            listener = TcpListener()
        self._tcp_listeners[proxy_name] = listener
        return f"{listener.host}:{listener.port}"

    def _start_listening(self, proxy: ProxyServer, address: str) -> None:
        if self.transport == "inproc":
            proxy.listen(self._fabric.listen(address))
        else:
            proxy.listen(self._tcp_listeners[proxy.name])
        if self.heartbeat_interval is not None:
            proxy.start_heartbeats(self.heartbeat_interval)

    def _dial(self, address: str):
        if self.transport == "inproc":
            raw = self._fabric.connect(address)
        else:
            host, _, port = address.rpartition(":")
            if self.io == "reactor":
                raw = connect_tcp_reactor(host, int(port))
            else:
                raw = connect_tcp(host, int(port))
        if self.channel_wrapper is not None:
            raw = self.channel_wrapper(raw)
        return raw

    def connect(self, site_a: str, site_b: str) -> None:
        """Establish secure tunnels between two sites.

        Every proxy of ``site_a`` tunnels to every proxy of ``site_b``,
        so sites with redundant proxies get redundant paths.
        """
        for name_a in self.directory.proxies_of_site(site_a):
            for name_b in self.directory.proxies_of_site(site_b):
                self._connect_proxies(name_a, name_b)

    def _connect_proxies(self, name_a: str, name_b: str) -> None:
        pair = tuple(sorted([name_a, name_b]))
        with self._lock:
            if pair in self._connected_pairs:
                return
            self._connected_pairs.add(pair)
        proxy_a = self.proxies[name_a]
        address = self.directory.address_of_proxy(name_b)
        # Dial with handshake retry: an interrupted handshake (chaos
        # faults, peer hiccup) redials a fresh channel instead of failing
        # the whole grid build.
        # ``peer`` lets a reconnect offer the banked session ticket from
        # an earlier handshake with that proxy (full handshake if none).
        proxy_a.connect_to_peer(
            dial=lambda: self._dial(address), retry=self.handshake_retry,
            peer=name_b,
        )
        # Handshake completion on the acceptor side is asynchronous; wait
        # for the reverse direction to register.
        deadline = time.monotonic() + 10.0
        proxy_b = self.proxies[name_b]
        while name_a not in proxy_b.peers():
            if time.monotonic() > deadline:
                raise GridError(f"tunnel {name_a} <-> {name_b} did not come up")
            time.sleep(0.005)

    def connect_all(self) -> None:
        """Full mesh of tunnels (the paper's interconnection of all sites)."""
        names = sorted(self.sites)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                self.connect(a, b)

    def proxy_of(self, site: str) -> ProxyServer:
        try:
            return self.proxies[self.directory.proxy_of_site(site)]
        except Exception as exc:
            raise GridError(f"unknown site: {site!r}") from exc

    def create_filesystem(
        self, replication: int = 2, chunk_size: int = 256 * 1024,
        capacity_per_site: int = 1 << 30,
    ):
        """A grid file system with one chunk store per current site.

        The DFS extension (paper future work) replicates chunks across
        *sites*, so any single site failure leaves files readable; reads
        from a site prefer its own replica.
        """
        from repro.dfs.filesystem import GridFileSystem

        if len(self.sites) < replication:
            raise GridError(
                f"replication {replication} needs at least that many sites, "
                f"grid has {len(self.sites)}"
            )
        fs = GridFileSystem(
            replication=replication, chunk_size=chunk_size, clock=self.clock
        )
        for site in sorted(self.sites):
            fs.add_site(site, capacity=capacity_per_site)
        return fs

    def secure_node_channel(self, site: str, node: str):
        """Explicit secure channel from a station to its own proxy.

        Local traffic is cleartext by default; this is the paper's
        opt-in: the node gets a CA-issued certificate and an encrypted,
        mutually-authenticated channel on which the proxy answers
        control requests.  Returns the node-side secure channel.
        """
        if self.directory.find_node(node) != site:
            raise GridError(f"node {node!r} is not at site {site!r}")
        keypair = RsaKeyPair.generate(self.key_bits)
        certificate = self.ca.issue(node, "node", keypair.public)
        return self.proxy_of(site).open_secure_local_channel(keypair, certificate)

    # ------------------------------------------------------------------
    # Users and permissions
    # ------------------------------------------------------------------

    def add_user(self, userid: str, password: str) -> None:
        self.users.add_user(userid, password)

    def grant(self, principal: str, resource_pattern: str, action: str) -> None:
        self.acl.grant(principal, resource_pattern, action)

    # ------------------------------------------------------------------
    # Token control plane
    # ------------------------------------------------------------------

    def enable_token_auth(
        self, lifetime: float = 900.0, **kwargs: Any
    ) -> Optional[bytes]:
        """Switch the grid to the token auth plane (login once → tokens).

        Mints one grid-wide HMAC key and attaches a
        :class:`~repro.security.tokens.TokenService` replica to every
        proxy — current *and* future (sites added later auto-attach).
        Replicas share the key, so a token issued at any proxy verifies
        everywhere; their revocation lists start independent and
        converge by heartbeat gossip.

        Under ``REPRO_AUTH=legacy`` this is a no-op returning ``None``:
        the grid keeps the seed's per-request RSA credential path,
        byte-for-byte.  Otherwise returns the shared key (tests that
        build a second grid against the same token universe need it;
        pass ``key=...`` via ``kwargs`` to supply your own).
        """
        if auth_mode() == "legacy":
            return None
        if self._token_key is not None:
            raise GridError("token auth is already enabled")
        self._token_kwargs = dict(kwargs, lifetime=lifetime)
        self._token_key = self._token_kwargs.pop(
            "key", None
        ) or secrets.token_bytes(32)
        for proxy in self.proxies.values():
            self._attach_tokens(proxy)
        return self._token_key

    def _attach_tokens(self, proxy: ProxyServer) -> None:
        if self._token_key is None or proxy.tokens is not None:
            return
        service = TokenService(
            self.users,
            self.clock,
            key=self._token_key,
            issuer=proxy.name,
            **self._token_kwargs,
        )
        proxy.attach_token_service(service)

    def login(
        self,
        userid: str,
        password: str,
        via_site: Optional[str] = None,
        scopes: Optional[Sequence[str]] = None,
    ) -> bytes:
        """Authenticate once at a site's proxy; returns the token blob."""
        if not self.sites:
            raise GridError("grid has no sites")
        proxy = self.proxy_of(via_site or sorted(self.sites)[0])
        if proxy.tokens is None:
            raise GridError(
                "token auth is not enabled (call enable_token_auth first)"
            )
        return proxy.tokens.login(userid, password, scopes=scopes).to_bytes()

    def revoke_token(
        self, token_blob: bytes, via_site: Optional[str] = None
    ) -> int:
        """Revoke one token at a site's proxy and gossip it immediately.

        Returns that proxy's revocation epoch; the heartbeat it fans out
        makes every peer pull the list within one round trip.
        """
        proxy = self.proxy_of(via_site or sorted(self.sites)[0])
        if proxy.tokens is None:
            raise GridError("token auth is not enabled")
        proxy.tokens.revoke(token_blob)
        proxy.send_heartbeats()
        return proxy.tokens.epoch

    def revoke_user(self, userid: str, via_site: Optional[str] = None) -> int:
        """Revoke every outstanding token of ``userid`` grid-wide."""
        proxy = self.proxy_of(via_site or sorted(self.sites)[0])
        if proxy.tokens is None:
            raise GridError("token auth is not enabled")
        proxy.tokens.revoke_user(userid)
        proxy.send_heartbeats()
        return proxy.tokens.epoch

    def submit_job_with_token(
        self,
        token_blob: bytes,
        task: str,
        params: Optional[dict] = None,
        origin_site: Optional[str] = None,
        target_site: Optional[str] = None,
        timeout: float = 60.0,
    ) -> Any:
        """Token-plane job submission from ``origin_site``'s proxy."""
        if not self.sites:
            raise GridError("grid has no sites")
        origin = origin_site or sorted(self.sites)[0]
        return self.proxy_of(origin).submit_job_with_token(
            token_blob,
            task,
            params=params,
            target_site=target_site,
            timeout=timeout,
        )

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------

    def submit_job(
        self,
        userid: str,
        password: str,
        task: str,
        params: Optional[dict] = None,
        origin_site: Optional[str] = None,
        target_site: Optional[str] = None,
        timeout: float = 60.0,
    ) -> Any:
        """Submit a job from ``origin_site``'s proxy, optionally to another
        site; authentication and permissions are checked at both ends."""
        if not self.sites:
            raise GridError("grid has no sites")
        origin = origin_site or sorted(self.sites)[0]
        return self.proxy_of(origin).submit_job(
            userid,
            password,
            task,
            params=params,
            target_site=target_site,
            timeout=timeout,
        )

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------

    def global_status(
        self, via_site: Optional[str] = None, allow_partial: bool = False
    ) -> dict[str, Optional[list[dict]]]:
        """Compile the grid-wide status from every site's proxy.

        "The global status is obtained by compilation of all the sites'
        data" — the querying proxy asks each peer over the control
        protocol and merges the answers with its own local view.

        With ``allow_partial`` an unreachable site degrades to ``None``
        in the result instead of failing the whole query: the paper's
        failure confinement, surfaced at the API ("losing one proxy
        costs the grid that site's capacity, not the whole grid").
        """
        if not self.sites:
            return {}
        origin_name = via_site or sorted(self.sites)[0]
        origin = self.proxy_of(origin_name)
        status: dict[str, Optional[list[dict]]] = {
            origin.site.name: origin.local_status()
        }
        for site in self.directory.sites():
            if site == origin.site.name:
                continue
            # Any proxy of the site can answer for it; the origin's
            # failure detector orders candidates (dead peers last).
            last_error = None
            for peer in origin.ranked_peers(self.directory.proxies_of_site(site)):
                try:
                    status[site] = origin.query_peer_status(peer)
                    break
                except Exception as exc:
                    last_error = exc
            else:
                if allow_partial:
                    status[site] = None
                    continue
                raise GridError(
                    f"no proxy of site {site!r} answered the status query: "
                    f"{last_error}"
                )
        return status

    def global_observability(
        self,
        via_site: Optional[str] = None,
        allow_partial: bool = True,
        trace_id: Optional[str] = None,
        max_spans: Optional[int] = None,
    ) -> dict[str, Optional[dict]]:
        """Compile the grid-wide telemetry view, one dump per site.

        Observability follows the same layer-3 model as status: each
        proxy keeps only its own site's metrics and spans, and the grid
        view is compiled on demand by asking every peer over ``OBS_DUMP``.
        ``trace_id`` narrows each site's spans to one trace — the way to
        see a single request's per-hop story across the grid.

        ``allow_partial`` (the default here, unlike status) degrades an
        unreachable site to ``None``: a telemetry query should not fail
        because the grid is in exactly the state worth looking at.
        """
        if not self.sites:
            return {}
        origin_name = via_site or sorted(self.sites)[0]
        origin = self.proxy_of(origin_name)
        body = {}
        if trace_id is not None:
            body["trace"] = trace_id
        if max_spans is not None:
            body["max_spans"] = max_spans
        view: dict[str, Optional[dict]] = {
            origin.site.name: origin.observability(
                trace_id=trace_id, max_spans=max_spans
            )
        }
        for site in self.directory.sites():
            if site == origin.site.name:
                continue
            last_error = None
            for peer in origin.ranked_peers(self.directory.proxies_of_site(site)):
                try:
                    reply = origin.request(peer, Op.OBS_DUMP, dict(body))
                    view[site] = reply.body.get("obs")
                    break
                except Exception as exc:
                    last_error = exc
            else:
                if allow_partial:
                    view[site] = None
                    continue
                raise GridError(
                    f"no proxy of site {site!r} answered the telemetry "
                    f"query: {last_error}"
                )
        return view

    # ------------------------------------------------------------------
    # MPI over the grid
    # ------------------------------------------------------------------

    def place_ranks(
        self, nprocs: int, policy: str = "round_robin"
    ) -> tuple[dict[int, str], dict[int, str]]:
        """rank → site and rank → node maps under the chosen policy.

        ``round_robin`` cycles the flat node list (MPI's native policy,
        per the paper); ``load_balanced`` fills fastest/least-loaded
        nodes first using the grid's status information.
        """
        all_nodes: list[tuple[str, str, float, int]] = []
        for site_name in sorted(self.sites):
            # A site with no live proxy is unreachable: its stations may
            # be healthy, but nothing can tunnel their traffic — route
            # the application around it (the paper's failure confinement).
            if not any(
                self.proxies[proxy_name].alive
                for proxy_name in self.directory.proxies_of_site(site_name)
                if proxy_name in self.proxies
            ):
                continue
            for node in self.sites[site_name].alive_nodes():
                all_nodes.append(
                    (site_name, node.name, node.cpu_speed, node.running_tasks)
                )
        if not all_nodes:
            raise GridError("no alive nodes to place on")
        if policy == "round_robin":
            ordered = all_nodes
        elif policy == "load_balanced":
            ordered = sorted(all_nodes, key=lambda t: (t[3], -t[2], t[1]))
        else:
            raise GridError(f"unknown placement policy: {policy!r}")
        rank_to_site: dict[int, str] = {}
        rank_to_node: dict[int, str] = {}
        for rank in range(nprocs):
            site_name, node_name, _, _ = ordered[rank % len(ordered)]
            rank_to_site[rank] = site_name
            rank_to_node[rank] = node_name
        return rank_to_site, rank_to_node

    def run_mpi(
        self,
        app: Callable[[Communicator], Any],
        nprocs: int,
        policy: str = "round_robin",
        timeout: float = 120.0,
        args: tuple = (),
        app_id: Optional[str] = None,
    ) -> MpiJobResult:
        """Run an *unmodified* MPI application across the whole grid.

        The proxy of rank 0's site originates the application: it creates
        the address spaces (virtual slaves included) at every
        participating proxy, then ranks execute on threads bound to their
        site's router.  Local pairs use direct LAN delivery; cross-site
        pairs ride the secure tunnels (Fig. 3a vs Fig. 3b).
        """
        if nprocs <= 0:
            raise GridError(f"nprocs must be positive: {nprocs}")
        if not self.sites:
            raise GridError("grid has no sites")
        rank_to_site, rank_to_node = self.place_ranks(nprocs, policy=policy)
        app_id = app_id or f"mpi-{next(_app_ids)}"
        origin = self.proxy_of(rank_to_site[0])
        origin.start_app(app_id, rank_to_site, rank_to_node, announce=True)
        routers = {
            site: self.proxy_of(site).router_for(app_id)
            for site in set(rank_to_site.values())
        }

        returns: list[Any] = [None] * nprocs
        errors: dict[int, BaseException] = {}
        errors_lock = threading.Lock()

        def run_rank(rank: int) -> None:
            comm = Communicator(rank, nprocs, routers[rank_to_site[rank]])
            try:
                returns[rank] = app(comm, *args)
            except BaseException as exc:
                with errors_lock:
                    errors[rank] = exc

        threads = [
            threading.Thread(  # gridlint: disable=GL102 -- colocated MPI ranks run arbitrary blocking app code; one thread per rank, joined below
                target=run_rank, args=(rank,), name=f"{app_id}-rank-{rank}"
            )
            for rank in range(nprocs)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=timeout)
            hung = [t for t in threads if t.is_alive()]
            if hung:
                raise TimeoutError(
                    f"{len(hung)} rank(s) of {app_id!r} did not finish "
                    f"within {timeout}s"
                )
        finally:
            origin.end_app(app_id, announce=True)
        placement = [rank_to_node[rank] for rank in range(nprocs)]
        return MpiJobResult(returns=returns, errors=errors, placement=placement)

    # ------------------------------------------------------------------
    # Workload management
    # ------------------------------------------------------------------

    def attach_workload_manager(
        self,
        site: str,
        journal: Optional[Any] = None,
        **kwargs: Any,
    ):
        """Make ``site``'s proxy the grid's workload-management authority.

        Creates a :class:`~repro.control.wms.WorkloadManager` (grid
        clock, authority proxy's metrics registry) and attaches it: the
        proxy then serves the JOB_QSUBMIT/JOB_CLAIM/JOB_STATUS/JOB_DONE
        ops, and its failure detector requeues a dead pilot's claims.
        Pass a ``journal`` (e.g. :class:`~repro.control.wms.FileJournal`)
        for crash-recoverable durability; extra ``kwargs`` go to the
        manager (``half_life``, ``backfill_limit``, ...).
        """
        from repro.control.wms import WorkloadManager

        proxy = self.proxy_of(site)
        wms = WorkloadManager(
            name=f"wms.{site}",
            clock=self.clock,
            journal=journal,
            metrics=proxy.obs.metrics,
            **kwargs,
        )
        proxy.attach_wms(wms)
        return wms

    # ------------------------------------------------------------------

    def start_shard_frontend(
        self,
        site: str,
        shards: Optional[int] = None,
        mode: Optional[str] = None,
    ):
        """Front ``site``'s proxy with a multi-core shard worker fleet.

        ``shards=None`` reads ``REPRO_SHARDS`` and returns ``None`` when
        it is unset or ``<= 1`` — the default grid path is untouched
        unless sharding is asked for.  The fleet listens on its own
        port (``manager.address``); the proxy adopts it for OBS_DUMP
        folding and shuts it down with the grid.
        """
        from repro.core.shardmgr import ShardManager

        proxy = self.proxy_of(site)
        if shards is None:
            manager = ShardManager.from_env(mode=mode)
        else:
            manager = ShardManager(shards=shards, mode=mode)
        if manager is None:
            return None
        manager.start()
        proxy.attach_shards(manager)
        self._shard_managers.append(manager)
        return manager

    def shutdown(self) -> None:
        for manager in self._shard_managers:
            manager.stop()
        self._shard_managers = []
        for proxy in self.proxies.values():
            proxy.shutdown()
        for site in self.sites.values():
            site.shutdown()

    def __enter__(self) -> "Grid":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

"""The inter-proxy control protocol.

The paper standardised control communication "through the creation of a
protocol used among the proxies.  The codes used in this protocol can be
expanded to deal with a new situation."  This module implements that:

* :class:`Op` — the operation-code registry.  Core codes are predefined;
  :func:`register_op` adds new ones at runtime without touching the
  dispatcher, which is the expandability the paper calls for.
* :class:`ControlMessage` — a request or reply with a correlation id,
  carried in a CONTROL frame.
* :class:`RequestTracker` — matches replies to outstanding requests on a
  proxy's control channel.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.transport.frames import Frame, FrameKind, decode_value, encode_value

__all__ = [
    "ControlMessage",
    "IDEMPOTENT_OPS",
    "Op",
    "ProtocolError",
    "RequestTracker",
    "register_op",
]


class ProtocolError(Exception):
    """Malformed control traffic or unknown op-code."""


class Op:
    """Well-known control operation codes.

    Codes are small ints on the wire; names exist for logs and dispatch
    tables.  100–999 are reserved for the core protocol; 1000+ belong to
    extensions registered with :func:`register_op`.
    """

    # -- session / liveness
    HELLO = 100  # proxy introduces itself after the tunnel comes up
    PING = 101
    PONG = 102
    BYE = 103
    # -- monitoring / control (layer 3)
    STATUS_QUERY = 200  # "send me your site's status"
    STATUS_REPORT = 201
    LOCATE_RESOURCE = 202  # resource location service
    RESOURCE_FOUND = 203
    OBS_DUMP = 210  # "send me your metrics and trace spans"
    OBS_DATA = 211
    SHARD_STATS = 212  # parent → shard worker: "send me your registry"
    # -- authentication / permissions (layer 2)
    AUTH_CHECK = 300  # validate a user credential at the destination
    AUTH_OK = 301
    AUTH_DENIED = 302
    # -- token control plane (login once → HMAC bearer tokens)
    AUTH_LOGIN = 310  # userid+password (or signature) → AUTH_TOKEN
    AUTH_TOKEN = 311
    AUTH_REFRESH = 312  # live token → fresh token with the same claims
    AUTH_REVOKE = 313  # kill one token (or every token of a user)
    AUTH_REVOKED = 314
    AUTH_RLIST = 315  # anti-entropy pull of the revocation list
    AUTH_RLIST_DATA = 316
    # -- jobs
    JOB_SUBMIT = 400
    JOB_ACCEPTED = 401
    JOB_REJECTED = 402
    JOB_RESULT = 403
    # -- workload manager (durable queue + pilot claims)
    JOB_QSUBMIT = 410  # enqueue a JobSpec at the WMS authority
    JOB_QUEUED = 411
    JOB_CLAIM = 412  # pilot asks for work, carrying its capability
    JOB_ASSIGN = 413
    JOB_STATUS = 414  # queue counters, or one job's state
    JOB_STATE = 415
    JOB_DONE = 416  # attempt outcome report (ok or failed)
    JOB_DONE_ACK = 417
    # -- MPI support (layer 4)
    MPI_START = 500  # create the application address space
    MPI_STARTED = 501
    MPI_END = 502
    MPI_ENDED = 503
    # -- generic
    ERROR = 900

    _names: dict[int, str] = {}

    @classmethod
    def name_of(cls, code: int) -> str:
        return cls._names.get(code, f"op:{code}")

    @classmethod
    def is_known(cls, code: int) -> bool:
        return code in cls._names


# Populate the registry from the class attributes.
Op._names = {
    value: name
    for name, value in vars(Op).items()
    if isinstance(value, int) and not name.startswith("_")
}

#: Ops a retry policy may transparently re-send.  Pure reads (status,
#: resource location) and checks with no side effects are idempotent; a
#: duplicated JOB_SUBMIT would execute the job twice and MPI_START /
#: MPI_END mutate address-space state, so those are excluded and a caller
#: must treat their timeouts as indeterminate rather than retry blindly.
#: The workload-manager ops mutate state but carry their own dedup keys
#: (JOB_QSUBMIT: job_id; JOB_CLAIM: claim_id; JOB_DONE: per-attempt
#: token), so a duplicated delivery is absorbed at the authority.
#: The token-control-plane ops are idempotent too: AUTH_LOGIN and
#: AUTH_REFRESH mint a *fresh* token on every call (re-sending yields
#: another equally-valid token, never a broken state), AUTH_REVOKE adds
#: to a grow-only set, and AUTH_RLIST is a pure read — so retry policies
#: may re-send all four blindly.
IDEMPOTENT_OPS = frozenset(
    {Op.HELLO, Op.PING, Op.STATUS_QUERY, Op.LOCATE_RESOURCE, Op.AUTH_CHECK,
     Op.OBS_DUMP, Op.SHARD_STATS,
     Op.JOB_QSUBMIT, Op.JOB_CLAIM, Op.JOB_STATUS, Op.JOB_DONE,
     Op.AUTH_LOGIN, Op.AUTH_REFRESH, Op.AUTH_REVOKE, Op.AUTH_RLIST}
)

_extension_codes = itertools.count(1000)
_registry_lock = threading.Lock()


def register_op(name: str, code: Optional[int] = None) -> int:
    """Register an extension op-code; returns the assigned code.

    New situations get new codes without modifying the core protocol —
    the paper's expandability requirement.
    """
    with _registry_lock:
        if code is None:
            code = next(_extension_codes)
        if code in Op._names:
            raise ProtocolError(
                f"op code {code} already registered as {Op._names[code]!r}"
            )
        if not name:
            raise ProtocolError("empty op name")
        Op._names[code] = name
        return code


_message_ids = itertools.count(1)


@dataclass
class ControlMessage:
    """A control request or reply between proxies.

    ``trace`` is the expandable-header trace context (``{"tid", "sid"}``
    as produced by :meth:`repro.obs.trace.TraceContext.to_wire`): the
    originating proxy stamps it on requests, the dispatch pipeline
    copies it onto replies, and peers that predate it simply ignore the
    extra header key — the expandability the paper calls for.

    ``auth`` rides the same expandable header: an opaque bearer-token
    blob (:meth:`repro.security.tokens.Token.to_bytes`, which embeds the
    delegation chain) stamped on guarded requests.  Like ``trace`` it is
    advisory at this layer — a malformed value decodes to ``None`` and
    the auth *decision* belongs to the dispatch guard.  Replies never
    carry it: the credential authorises the request, not the answer.
    """

    op: int
    body: dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_message_ids))
    reply_to: Optional[int] = None
    sender: str = ""
    trace: Optional[dict[str, str]] = None
    auth: Optional[bytes] = None

    def is_reply(self) -> bool:
        return self.reply_to is not None

    def reply(self, op: int, body: Optional[dict[str, Any]] = None, sender: str = "") -> "ControlMessage":
        """Construct the reply correlated to this message.

        The reply inherits the request's trace context, so the round
        trip stays linkable at both ends.
        """
        return ControlMessage(
            op=op, body=body or {}, reply_to=self.message_id, sender=sender,
            trace=self.trace,
        )

    def to_frame(self) -> Frame:
        if not Op.is_known(self.op):
            raise ProtocolError(f"cannot send unknown op code {self.op}")
        headers = {
            "op": self.op,
            "id": self.message_id,
            "sender": self.sender,
        }
        if self.reply_to is not None:
            headers["reply_to"] = self.reply_to
        if self.trace is not None:
            headers["trace"] = self.trace
        if self.auth is not None:
            headers["auth"] = self.auth
        return Frame(
            kind=FrameKind.CONTROL, headers=headers, payload=encode_value(self.body)
        )

    @classmethod
    def from_frame(cls, frame: Frame) -> "ControlMessage":
        if frame.kind != FrameKind.CONTROL:
            raise ProtocolError(f"not a control frame: {frame.kind.name}")
        try:
            op = frame.headers["op"]
            message_id = frame.headers["id"]
        except KeyError as exc:
            raise ProtocolError(f"control frame missing header: {exc}") from exc
        if not isinstance(op, int) or not Op.is_known(op):
            raise ProtocolError(f"unknown op code: {op!r}")
        body = decode_value(frame.payload)
        if not isinstance(body, dict):
            raise ProtocolError("control body is not a dict")
        trace = frame.headers.get("trace")
        if not isinstance(trace, dict):
            trace = None  # advisory header: malformed context is dropped
        auth = frame.headers.get("auth")
        if not isinstance(auth, bytes):
            auth = None  # ditto; the guard treats "absent" as "deny"
        return cls(
            op=op,
            body=body,
            message_id=message_id,
            reply_to=frame.headers.get("reply_to"),
            sender=frame.headers.get("sender", ""),
            trace=trace,
            auth=auth,
        )

    def __repr__(self) -> str:
        kind = f"reply_to={self.reply_to}" if self.is_reply() else "request"
        return f"ControlMessage({Op.name_of(self.op)}, id={self.message_id}, {kind})"


class RequestTracker:
    """Correlates replies with outstanding requests on one control link."""

    def __init__(self):
        self._waiting: dict[int, threading.Event] = {}
        self._replies: dict[int, ControlMessage] = {}
        self._lock = threading.Lock()

    def expect(self, request: ControlMessage) -> int:
        """Register interest in the reply to ``request``."""
        with self._lock:
            self._waiting[request.message_id] = threading.Event()
        return request.message_id

    def fulfil(self, reply: ControlMessage) -> bool:
        """Deliver a reply; returns False if nobody was waiting."""
        if reply.reply_to is None:
            return False
        with self._lock:
            event = self._waiting.get(reply.reply_to)
            if event is None:
                return False
            self._replies[reply.reply_to] = reply
            event.set()
            return True

    def wait(self, message_id: int, timeout: float = 30.0) -> ControlMessage:
        """Block until the reply arrives."""
        with self._lock:
            event = self._waiting.get(message_id)
        if event is None:
            raise ProtocolError(f"no outstanding request {message_id}")
        if not event.wait(timeout=timeout):
            with self._lock:
                self._waiting.pop(message_id, None)
            raise ProtocolError(f"request {message_id} timed out after {timeout}s")
        with self._lock:
            self._waiting.pop(message_id, None)
            return self._replies.pop(message_id)

    def cancel(self, message_id: int, reason: str = "link down") -> None:
        """Wake one waiter with an ERROR reply."""
        with self._lock:
            event = self._waiting.get(message_id)
            if event is None or message_id in self._replies:
                return
            # "cancelled" marks this as a locally-synthesised reply (the
            # link died), distinguishable from a peer-reported ERROR so
            # retry layers treat it as peer-unavailable, not app failure.
            self._replies[message_id] = ControlMessage(
                op=Op.ERROR,
                body={"error": reason, "cancelled": True},
                reply_to=message_id,
            )
            event.set()

    def cancel_all(self, reason: str = "link down") -> None:
        """Wake all waiters with an ERROR reply (total shutdown)."""
        with self._lock:
            ids = list(self._waiting)
        for message_id in ids:
            self.cancel(message_id, reason)

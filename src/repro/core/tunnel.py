"""Secure inter-site tunnels between proxies.

The paper: "Traffic tunneling was chosen, using SSL only among the sites.
By default, the local communication at each site is not encrypted, based
on the assumption that communication inside the site is already safe."

A :class:`Tunnel` is the secure pipe between two proxies: it runs the
SSL-like handshake over whatever raw channel connects them (in-process or
TCP), then carries control, MPI and data frames with record protection.
Inbound frames are demultiplexed to registered handlers by frame kind, so
one tunnel serves the control protocol and any number of multiplexed MPI
applications concurrently.

Delivery is event-driven by default: :meth:`Tunnel.start` registers the
secure channel on the shared reactor, so N tunnels cost O(loops) threads
instead of one receiver thread each.  ``REPRO_IO=threaded`` (or a channel
that does not speak the reactor protocol) falls back to the seed's
thread-per-tunnel receive loop — same handler contract, same close
semantics.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.control.retry import RetryError, RetryPolicy
from repro.security.certs import Certificate
from repro.security.handshake import (
    HandshakeError,
    ResumptionTicket,
    SecureChannel,
    SessionTicketKeeper,
    accept_secure,
    connect_secure,
)
from repro.security.rsa import RsaKeyPair, RsaPublicKey
from repro.transport.channel import Channel
from repro.transport.errors import ChannelBusy, TransportError, TransportTimeout
from repro.transport.frames import Frame, FrameKind
from repro.transport.reactor import get_global_reactor, io_mode, on_reactor_thread

__all__ = ["Tunnel", "TunnelBusy", "TunnelError"]


class TunnelError(Exception):
    """Handshake failure or use of a dead tunnel."""


class TunnelBusy(TunnelError):
    """The peer is slow and the tunnel's write queue is full.

    Unlike every other :class:`TunnelError`, the tunnel is still *up*:
    backpressure is congestion, not failure, so the send is simply
    refused and may be retried.  Closing the tunnel here would turn a
    slow consumer into an outage.
    """


class Tunnel:
    """An authenticated, encrypted link between two proxies.

    Build with :meth:`establish_client` / :meth:`establish_server`, then
    :meth:`start` the receiver loop.  ``on_frame(kind, handler)`` registers
    the demultiplexer targets; ``on_close(fn)`` fires when the link dies
    (feeds the failure detector).
    """

    def __init__(self, secure: SecureChannel, local_name: str):
        self._secure = secure
        self.local_name = local_name
        self.peer_name = secure.peer.subject
        self._handlers: dict[FrameKind, Callable[[Frame], None]] = {}
        self._batch_handlers: dict[FrameKind, Callable[[list], None]] = {}
        self._close_callbacks: list[Callable[["Tunnel"], None]] = []
        self._receiver: Optional[threading.Thread] = None
        self._registration = None  # reactor membership, when event-driven
        self._running = threading.Event()
        self._closed = threading.Event()
        self._finalized = threading.Event()
        self._finalize_lock = threading.Lock()
        self._send_lock = threading.Lock()
        #: "reactor" | "threaded" | None (not started)
        self.mode: Optional[str] = None
        #: owning proxy's metrics registry; set by the proxy on install,
        #: None for bare tunnels (tests, benchmarks baseline)
        self.metrics = None
        self._m_sent = None
        self._m_busy = None
        self._m_send_errors = None

    def bind_metrics(self, registry) -> None:
        """Attach the owner's registry; send-path counters go there."""
        self.metrics = registry
        if registry is not None:
            self._m_sent = registry.counter("tunnel.frames_sent")
            self._m_busy = registry.counter("tunnel.backpressure")
            self._m_send_errors = registry.counter("tunnel.send_errors")

    # -- construction ---------------------------------------------------------

    @classmethod
    def establish_client(
        cls,
        raw: Channel,
        local_name: str,
        keypair: RsaKeyPair,
        certificate: Certificate,
        trust_anchor: RsaPublicKey,
        clock: Callable[[], float],
        mode: str = "dh",
        resumption: Optional[ResumptionTicket] = None,
    ) -> "Tunnel":
        """Dial-side tunnel establishment (handshake as client).

        ``resumption`` offers a session ticket from an earlier tunnel to
        the same peer — accepted, the handshake skips its asymmetric
        exchange; rejected, it falls back to the full exchange in-band.
        """
        try:
            secure = connect_secure(
                raw,
                keypair,
                certificate,
                trust_anchor,
                clock,
                mode=mode,
                expected_peer_role="proxy",
                resumption=resumption,
            )
        except HandshakeError as exc:
            raw.close()
            raise TunnelError(f"tunnel handshake failed: {exc}") from exc
        return cls(secure, local_name)

    @classmethod
    def dial_with_retry(
        cls,
        dial: Callable[[], Channel],
        local_name: str,
        keypair: RsaKeyPair,
        certificate: Certificate,
        trust_anchor: RsaPublicKey,
        clock: Callable[[], float],
        mode: str = "dh",
        retry: Optional[RetryPolicy] = None,
        resumption: Optional[ResumptionTicket] = None,
    ) -> "Tunnel":
        """Dial-side establishment with handshake retry.

        A handshake interrupted by transport faults (truncated or dropped
        hellos, a mid-handshake disconnect) poisons the raw channel, so
        each attempt dials a *fresh* channel via ``dial``.  Retrying is
        safe — an incomplete handshake has no side effects beyond the
        dead channel.  Raises :class:`TunnelError` when every attempt
        fails.
        """
        retry = retry or RetryPolicy(retryable=(TunnelError,))
        if TunnelError not in retry.retryable:
            retry = RetryPolicy(
                max_attempts=retry.max_attempts,
                base_delay=retry.base_delay,
                multiplier=retry.multiplier,
                max_delay=retry.max_delay,
                jitter=retry.jitter,
                deadline=retry.deadline,
                retryable=retry.retryable + (TunnelError,),
            )

        def attempt(_deadline) -> "Tunnel":
            try:
                raw = dial()
            except Exception as exc:
                raise TunnelError(f"dial failed: {exc}") from exc
            return cls.establish_client(
                raw, local_name, keypair, certificate, trust_anchor, clock,
                mode=mode, resumption=resumption,
            )

        try:
            return retry.call(attempt, idempotent=True)
        except RetryError as exc:
            raise TunnelError(
                f"tunnel establishment failed after {exc.attempts} attempts: "
                f"{exc.last}"
            ) from exc.last

    @classmethod
    def establish_server(
        cls,
        raw: Channel,
        local_name: str,
        keypair: RsaKeyPair,
        certificate: Certificate,
        trust_anchor: RsaPublicKey,
        clock: Callable[[], float],
        revocation_check: Optional[Callable[[Certificate], bool]] = None,
        expected_peer_role: str = "proxy",
        ticket_keeper: Optional[SessionTicketKeeper] = None,
    ) -> "Tunnel":
        """Accept-side tunnel establishment (handshake as server).

        Peers are proxies by default; a site-local secure channel accepts
        role ``"node"`` instead.  ``ticket_keeper`` turns on session
        resumption: tickets are issued on full handshakes and redeemed
        on later dials.
        """
        try:
            secure = accept_secure(
                raw,
                keypair,
                certificate,
                trust_anchor,
                clock,
                expected_peer_role=expected_peer_role,
                revocation_check=revocation_check,
                ticket_keeper=ticket_keeper,
            )
        except HandshakeError as exc:
            raw.close()
            raise TunnelError(f"tunnel handshake failed: {exc}") from exc
        return cls(secure, local_name)

    # -- demultiplexing ---------------------------------------------------------

    def on_frame(self, kind: FrameKind, handler: Callable[[Frame], None]) -> None:
        """Register the handler for one frame kind (replacing any previous)."""
        self._handlers[kind] = handler

    def on_frame_batch(
        self, kind: FrameKind, handler: Callable[[list], None]
    ) -> None:
        """Register a bulk handler: a drained backlog of ``kind`` frames
        arrives as one list (reactor mode only — the threaded receive
        loop always delivers singly through :meth:`on_frame`).  Kinds
        without a batch handler fall back to per-frame delivery, so
        registering one is purely an optimisation, never a semantic
        change."""
        self._batch_handlers[kind] = handler

    def on_close(self, callback: Callable[["Tunnel"], None]) -> None:
        self._close_callbacks.append(callback)

    def start(self, io: Optional[str] = None) -> None:
        """Start inbound delivery; idempotent.

        With ``io="reactor"`` (the default, via ``$REPRO_IO``) the secure
        channel joins the shared event loop and frames arrive as loop
        callbacks; ``"threaded"`` — or a channel that cannot be polled —
        keeps the seed's dedicated receiver thread.
        """
        if self.mode is not None:
            return
        self._running.set()
        if io_mode(io) == "reactor" and self._secure.supports_reactor:
            self.mode = "reactor"
            self._registration = get_global_reactor().add_channel(
                self._secure,
                on_frame=self._deliver,
                on_batch=self._deliver_batch,
                on_close=lambda channel, exc: self._finalize(),
            )
            return
        self.mode = "threaded"
        self._receiver = threading.Thread(  # gridlint: disable=GL102 -- REPRO_IO=threaded escape hatch keeps the seed per-tunnel receiver thread
            target=self._receive_loop,
            daemon=True,
            name=f"tunnel-{self.local_name}->{self.peer_name}",
        )
        self._receiver.start()

    def _deliver(self, frame: Frame) -> None:
        handler = self._handlers.get(frame.kind)
        if handler is not None:
            handler(frame)
        # Unhandled kinds are dropped: "discarding unauthorized
        # traffic" is the security layer's default posture.

    def _deliver_batch(self, frames: list) -> None:
        """Demultiplex a drained backlog, preserving arrival order.

        Consecutive frames of one kind go to that kind's batch handler
        as a single list; runs are never reordered across kinds, so the
        per-frame ordering contract is unchanged.
        """
        i, n = 0, len(frames)
        while i < n:
            kind = frames[i].kind
            j = i + 1
            while j < n and frames[j].kind == kind:
                j += 1
            handler = self._batch_handlers.get(kind)
            if handler is not None:
                handler(frames[i:j] if (i, j) != (0, n) else frames)
            else:
                for k in range(i, j):
                    self._deliver(frames[k])
            i = j

    def _receive_loop(self) -> None:
        try:
            while self._running.is_set():
                try:
                    frame = self._secure.recv(timeout=0.5)
                except TransportTimeout:
                    continue
                except TransportError:
                    break  # includes ChannelClosed: peer is gone
                except HandshakeError:
                    break  # record verification failed: hostile or corrupt peer
                self._deliver(frame)
        finally:
            self._finalize()

    def _finalize(self) -> None:
        """Mark the tunnel dead and fire close callbacks exactly once."""
        with self._finalize_lock:
            if self._finalized.is_set():
                return
            self._finalized.set()
        self._running.clear()
        self._closed.set()
        for callback in list(self._close_callbacks):
            callback(self)

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait until inbound delivery has fully stopped.

        Returns True once close callbacks have fired (or the tunnel was
        never started).  Shutdown paths use this so no receiver — thread
        or loop registration — outlives its proxy.
        """
        if self.mode is None:
            return True
        if self.mode == "threaded" and self._receiver is not None:
            self._receiver.join(timeout=timeout)
            return not self._receiver.is_alive()
        return self._finalized.wait(timeout=timeout)

    # -- traffic -------------------------------------------------------------------

    def _acquire_send_lock(self) -> None:
        """Take the send lock, but never by blocking an event-loop thread.

        A worker blocked in backpressure holds the lock for up to the
        channel's send timeout; if a loop thread (heartbeat timer, inline
        handler reply) then waited here, the only flusher would stall and
        every channel on that loop would freeze until the waiter timed
        out.  On loop threads contention is therefore congestion: fail
        fast with :class:`TunnelBusy` and let the caller retry.
        """
        if on_reactor_thread():
            if not self._send_lock.acquire(blocking=False):
                raise TunnelBusy(
                    f"tunnel {self.local_name}->{self.peer_name} send "
                    f"refused: channel busy on event-loop thread"
                )
            return
        self._send_lock.acquire()

    def send(self, frame: Frame) -> None:
        if not self.alive:
            raise TunnelError(
                f"tunnel {self.local_name}->{self.peer_name} is down"
            )
        self._acquire_send_lock()
        try:
            self._secure.send(frame)
        except ChannelBusy as exc:
            # Backpressure: the tunnel is congested, not broken.
            if self._m_busy is not None:
                self._m_busy.inc()
            raise TunnelBusy(f"tunnel send refused: {exc}") from exc
        except TransportError as exc:
            if self._m_send_errors is not None:
                self._m_send_errors.inc()
            self.close()
            raise TunnelError(f"tunnel send failed: {exc}") from exc
        finally:
            self._send_lock.release()
        if self._m_sent is not None:
            self._m_sent.inc()

    def send_many(self, frames) -> None:
        """Send a burst of frames, coalescing records into one socket write.

        Control chatter and multiplexed MPI traffic (heartbeats,
        virtual-slave bursts) sent together share a single syscall; each
        frame keeps its own record so the wire format is unchanged.
        """
        frames = list(frames)
        if not frames:
            return
        if not self.alive:
            raise TunnelError(
                f"tunnel {self.local_name}->{self.peer_name} is down"
            )
        self._acquire_send_lock()
        try:
            self._secure.send_many(frames)
        except ChannelBusy as exc:
            if self._m_busy is not None:
                self._m_busy.inc()
            raise TunnelBusy(f"tunnel send refused: {exc}") from exc
        except TransportError as exc:
            if self._m_send_errors is not None:
                self._m_send_errors.inc()
            self.close()
            raise TunnelError(f"tunnel send failed: {exc}") from exc
        finally:
            self._send_lock.release()
        if self._m_sent is not None:
            self._m_sent.inc(len(frames))

    @property
    def alive(self) -> bool:
        return not self._closed.is_set() and not self._secure.closed

    @property
    def peer_certificate(self) -> Certificate:
        """The certificate the peer authenticated with during the handshake."""
        return self._secure.peer.certificate

    @property
    def stats(self):
        """Traffic accounting from the secure channel (record bytes)."""
        return self._secure.stats

    @property
    def cipher_suite(self) -> str:
        """The record-cipher suite negotiated for this tunnel."""
        return self._secure.suite

    @property
    def resumed(self) -> bool:
        """True when the handshake was a ticket resumption (no DH/RSA)."""
        return getattr(self._secure, "resumed", False)

    @property
    def resumption_ticket(self) -> Optional[ResumptionTicket]:
        """Ticket for the next dial to this peer, when the server issued one."""
        return getattr(self._secure, "resumption_ticket", None)

    def close(self) -> None:
        self._running.clear()
        self._closed.set()
        self._secure.close()

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"Tunnel({self.local_name}->{self.peer_name}, {state})"

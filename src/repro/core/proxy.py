"""The proxy server: the paper's central entity.

"This entity acts similarly to a gateway, serving as an interconnecting
point between the sites that make up the computational grid. … The
control and the functionalities of the grid are introduced at the site's
border rather than individually in each node."

One :class:`ProxyServer` fronts one site.  It owns:

* **Layer 1** — a listener for inbound tunnels plus outbound dials to peer
  proxies; control and data share each tunnel, demultiplexed by frame
  kind.
* **Layer 2** — its CA-issued certificate and key (host authentication),
  the site's user directory and ACL (user authentication and permissions,
  checked at the originating *and* destination proxy), and credential
  issuance so destinations can verify users offline.
* **Layer 3** — local site monitoring and the control protocol's
  status/locate services; per-site collection with on-demand global
  compilation.
* **Layer 4** — MPI application address spaces with virtual slaves, and
  the forwarding path the :class:`~repro.core.multiplexer.GridRouter`
  uses.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
from typing import Any, Callable, Optional

from repro.control.failure import FailureDetector, PeerState
from repro.control.retry import RetryError, RetryPolicy
from repro.control.wms import JobSpec, WmsError, site_capability
from repro.core.dispatch import (
    DROP,
    GUARDED_OP_SCOPES,
    DispatchPipeline,
    TokenAuthGuard,
)
from repro.core.multiplexer import GridRouter
from repro.core.protocol import (
    IDEMPOTENT_OPS,
    ControlMessage,
    Op,
    ProtocolError,
    RequestTracker,
)
from repro.core.routing import GridDirectory
from repro.core.site import Site
from repro.obs import ObsHub, racesan
from repro.obs.trace import current_trace, use_trace
from repro.core.tunnel import Tunnel, TunnelError
from repro.core.virtual_slave import AppSpace
from repro.security.auth import (
    AccessControlList,
    AuthenticationError,
    Credential,
    PermissionDenied,
    UserDirectory,
)
from repro.security.certs import Certificate
from repro.security.handshake import ResumptionTicket, SessionTicketKeeper
from repro.security.rsa import RsaKeyPair
from repro.security.tokens import Token, TokenError, TokenService, auth_mode
from repro.transport.channel import Channel, Listener
from repro.transport.errors import TransportError
from repro.transport.frames import Frame, FrameKind

__all__ = ["PeerUnavailable", "ProxyError", "ProxyServer", "RequestTimeout"]


class ProxyError(Exception):
    """Submission, authentication or forwarding failure at a proxy."""


class PeerUnavailable(ProxyError):
    """No live tunnel to the peer (down, closed mid-request, or never up).

    Not retryable against the same peer — the tunnel is gone and this
    layer does not redial — but it is precisely the signal the failover
    paths (job submission, status queries, MPI forwarding) react to by
    trying the site's next proxy.
    """


class RequestTimeout(ProxyError):
    """A control request got no reply within its per-attempt timeout.

    Retryable for idempotent ops (the peer may be slow, the request or
    reply may have been dropped); indeterminate for everything else —
    the request may have executed.
    """


#: Default policy for idempotent control requests: a few quick attempts
#: with exponential backoff, retrying timeouts and tunnel send failures.
DEFAULT_REQUEST_RETRY = RetryPolicy(
    max_attempts=3,
    base_delay=0.05,
    multiplier=2.0,
    max_delay=0.5,
    retryable=(RequestTimeout, TunnelError),
)

#: Guarded ops the request path stamps with this proxy's *service* token
#: automatically.  JOB_SUBMIT is excluded: it carries end-user identity,
#: so callers must supply the user's (delegated) token explicitly — a
#: service stamp there would launder user jobs into proxy identity.
_AUTO_STAMP_OPS = frozenset(GUARDED_OP_SCOPES) - {Op.JOB_SUBMIT}


class ProxyServer:
    """One site's border proxy."""

    def __init__(
        self,
        name: str,
        site: Site,
        keypair: RsaKeyPair,
        certificate: Certificate,
        trust_anchor,
        clock: Callable[[], float],
        directory: GridDirectory,
        users: Optional[UserDirectory] = None,
        acl: Optional[AccessControlList] = None,
        retry_policy: Optional[RetryPolicy] = None,
        suspect_after: float = 3.0,
        dead_after: float = 10.0,
        io: Optional[str] = None,
        dispatch_workers: int = 4,
    ):
        self.name = name
        self.site = site
        site.proxy_name = site.proxy_name or name
        self.keypair = keypair
        self.certificate = certificate
        self.trust_anchor = trust_anchor
        self.clock = clock
        self.directory = directory
        self.users = users or UserDirectory()
        self.acl = acl or AccessControlList(self.users)
        #: I/O mode for this proxy's tunnels: "reactor" | "threaded" |
        #: None (resolve from $REPRO_IO at tunnel start)
        self.io = io
        self._tunnels: dict[str, Tunnel] = {}
        self._tunnel_lock = threading.Lock()
        self._tracker = RequestTracker()
        self._inflight_by_peer: dict[str, set[int]] = {}
        self._inflight_lock = threading.Lock()
        self._listener: Optional[Listener] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handshake_threads: list[threading.Thread] = []
        self._handshake_lock = threading.Lock()
        self._heartbeat_timer = None
        self._routers: dict[str, GridRouter] = {}
        self._spaces: dict[str, AppSpace] = {}
        self._space_lock = threading.Lock()
        self._closing = threading.Event()
        #: peers we have heard a heartbeat/frame from, with timestamps
        self.last_heard: dict[str, float] = {}
        #: pluggable hooks (the failure detector and tests subscribe here)
        self.on_peer_lost: list[Callable[[str], None]] = []
        #: this proxy's observability hub — its own site's telemetry
        #: only, per the paper's layer-3 model; the grid view is compiled
        #: on demand over OBS_DUMP, never pushed.
        self.obs = ObsHub(name, clock=clock)
        _m = self.obs.metrics
        self._m_req_sent = _m.counter("request.sent")
        self._m_req_retries = _m.counter("request.retries")
        self._m_req_timeouts = _m.counter("request.timeouts")
        self._m_req_unavailable = _m.counter("request.peer_unavailable")
        #: token control plane (set by attach_token_service); None means
        #: the per-request RSA credential path is the only auth plane
        self.tokens: Optional[TokenService] = None
        self._token_guard: Optional[TokenAuthGuard] = None
        self._service_token: Optional[Token] = None
        self._service_blob: Optional[bytes] = None
        #: revocation-gossip bookkeeping: peers we are already pulling
        #: the revocation list from (dedups bursts of repoch heartbeats)
        self._rlist_pulling: set[str] = set()
        self._rlist_lock = threading.Lock()
        self._m_auth_pulls = _m.counter("auth.rlist.pulls")
        self._m_auth_merged = _m.counter("auth.rlist.merged")
        #: handshake resumption: server-side ticket keeper plus the
        #: client-side cache of tickets issued to us, keyed by peer name
        self.ticket_keeper = SessionTicketKeeper(clock)
        self._resumption: dict[str, ResumptionTicket] = {}
        #: the layered control-plane pipeline: decode → authorize →
        #: handler lookup → respond, blocking handlers on a sized pool
        self.pipeline = DispatchPipeline(
            name=f"{name}-dispatch", workers=dispatch_workers, obs=self.obs
        )
        self._register_handlers()
        #: extension op handlers: op code -> fn(message, peer) -> reply |
        #: None.  Checked before the built-ins; always run on the pool.
        self.extension_handlers = self.pipeline.overrides
        #: optional usage ledger (reward mechanisms); set by the Grid
        self.ledger = None
        #: optional shard fleet fronting this proxy (REPRO_SHARDS); its
        #: per-worker registries fold into the OBS_DUMP view on demand
        self._shard_manager = None
        #: optional workload manager (set by attach_wms): this proxy is
        #: then the grid's queue authority for the JOB_QSUBMIT/JOB_CLAIM
        #: /JOB_STATUS/JOB_DONE ops
        self.wms = None
        self._wms_claim_ids = itertools.count(1)
        #: retry policy for idempotent control requests (None disables)
        self.retry_policy = retry_policy or DEFAULT_REQUEST_RETRY
        #: peer health, fed by inbound traffic and tunnel-close events;
        #: failover paths order candidate peers by this detector's verdict
        self.health = FailureDetector(
            clock=clock, suspect_after=suspect_after, dead_after=dead_after
        )
        # Failure-detector transitions are rare and load-bearing: count
        # every one, so a flapping peer is visible in the OBS_DUMP view.
        _m_suspect = _m.counter("health.transitions.suspect")
        _m_dead = _m.counter("health.transitions.dead")
        _m_recover = _m.counter("health.transitions.recover")
        self.health.on_suspect.append(lambda peer: _m_suspect.inc())
        self.health.on_dead.append(lambda peer: _m_dead.inc())
        self.health.on_recover.append(lambda peer: _m_recover.inc())

    # ------------------------------------------------------------------
    # Layer 1: tunnels
    # ------------------------------------------------------------------

    def listen(self, listener: Listener) -> None:
        """Start accepting inbound tunnel connections on ``listener``."""
        if self._listener is not None:
            raise ProxyError(f"proxy {self.name!r} is already listening")
        self._listener = listener

        def accept_loop() -> None:
            while not self._closing.is_set():
                try:
                    raw = listener.accept(timeout=0.5)
                except TransportError:
                    if self._closing.is_set():
                        return
                    continue
                if self._closing.is_set():
                    raw.close()
                    return
                # Handshakes run off the accept loop (a slow or hostile
                # dialer must not block other connections); the threads
                # are tracked so shutdown can join them.
                worker = threading.Thread(  # gridlint: disable=GL102 -- handshake does blocking crypto I/O off the accept loop; tracked and joined on shutdown
                    target=self._accept_tunnel,
                    args=(raw,),
                    daemon=True,
                    name=f"{self.name}-accept",
                )
                with self._handshake_lock:
                    self._handshake_threads = [
                        t for t in self._handshake_threads if t.is_alive()
                    ]
                    self._handshake_threads.append(worker)
                worker.start()

        self._accept_thread = threading.Thread(  # gridlint: disable=GL102 -- accept loop owns the blocking listener socket; joined on shutdown
            target=accept_loop, daemon=True, name=f"{self.name}-listener"
        )
        self._accept_thread.start()

    def _accept_tunnel(self, raw: Channel) -> None:
        try:
            tunnel = Tunnel.establish_server(
                raw,
                self.name,
                self.keypair,
                self.certificate,
                self.trust_anchor,
                self.clock,
                ticket_keeper=self.ticket_keeper,
            )
        except TunnelError:
            return  # unauthenticated peers are silently discarded
        self._install_tunnel(tunnel)

    def connect_to_peer(
        self,
        raw: Optional[Channel] = None,
        mode: str = "dh",
        *,
        dial: Optional[Callable[[], Channel]] = None,
        retry: Optional[RetryPolicy] = None,
        peer: Optional[str] = None,
    ) -> Tunnel:
        """Dial a peer proxy.

        Pass an established ``raw`` channel for a single handshake
        attempt, or a ``dial`` factory to retry interrupted handshakes on
        a fresh channel per attempt (see :meth:`Tunnel.dial_with_retry`).

        ``peer`` is an optional *hint* naming who we expect to reach: if
        a resumption ticket from an earlier handshake with that peer is
        cached, it is offered and the dial skips the RSA/DH key exchange
        (the server falls back to a full handshake if it declines).  The
        tunnel still authenticates the peer — a hint can never pick the
        wrong certificate, only waste one ticket offer.
        """
        if (raw is None) == (dial is None):
            raise ProxyError("connect_to_peer needs exactly one of raw/dial")
        resumption = self._resumption.get(peer) if peer else None
        if dial is not None:
            tunnel = Tunnel.dial_with_retry(
                dial,
                self.name,
                self.keypair,
                self.certificate,
                self.trust_anchor,
                self.clock,
                mode=mode,
                retry=retry,
                resumption=resumption,
            )
        else:
            tunnel = Tunnel.establish_client(
                raw,
                self.name,
                self.keypair,
                self.certificate,
                self.trust_anchor,
                self.clock,
                mode=mode,
                resumption=resumption,
            )
        self._install_tunnel(tunnel)
        # Introduce ourselves so the peer can map tunnel -> proxy name.
        self._send_control(
            tunnel, ControlMessage(op=Op.HELLO, body={"site": self.site.name}, sender=self.name)
        )
        return tunnel

    def _install_tunnel(self, tunnel: Tunnel) -> None:
        if self._closing.is_set():
            # A handshake that completed mid-shutdown must not resurrect
            # the proxy: refuse the tunnel instead of installing it.
            tunnel.close()
            return
        tunnel.on_frame(FrameKind.CONTROL, lambda f: self._on_control(tunnel, f))
        tunnel.on_frame_batch(
            FrameKind.CONTROL, lambda fs: self._on_control_batch(tunnel, fs)
        )
        tunnel.on_frame(FrameKind.MPI, lambda f: self._on_mpi(tunnel, f))
        tunnel.on_frame(FrameKind.HEARTBEAT, lambda f: self._on_heartbeat(tunnel, f))
        tunnel.on_close(self._on_tunnel_close)
        # A dead tunnel must not strand request() callers mid-wait — but
        # only requests sent over *this* tunnel are affected.
        tunnel.on_close(self._cancel_inflight_for_peer)
        tunnel.bind_metrics(self.obs.metrics)
        # Client side of a handshake: bank the session ticket (if the
        # server issued one) so the *next* dial to this peer can resume.
        ticket = tunnel.resumption_ticket
        if ticket is not None:
            self._resumption[tunnel.peer_name] = ticket
        with self._tunnel_lock:
            self._tunnels[tunnel.peer_name] = tunnel
        self.last_heard[tunnel.peer_name] = self.clock()
        self.health.watch(tunnel.peer_name)
        tunnel.start(self.io)

    def _cancel_inflight_for_peer(self, tunnel: Tunnel) -> None:
        with self._inflight_lock:
            pending = list(self._inflight_by_peer.get(tunnel.peer_name, ()))
        for message_id in pending:
            self._tracker.cancel(
                message_id, f"tunnel to {tunnel.peer_name} closed"
            )

    def _on_tunnel_close(self, tunnel: Tunnel) -> None:
        with self._tunnel_lock:
            current = self._tunnels.get(tunnel.peer_name)
            stale = current is tunnel
            if stale:
                del self._tunnels[tunnel.peer_name]
        if stale:
            # A closed tunnel is a hard liveness signal: skip the
            # heartbeat timeout and degrade immediately.
            self.health.mark_dead(tunnel.peer_name)
        for callback in list(self.on_peer_lost):
            callback(tunnel.peer_name)

    def tunnel_to(self, peer_proxy: str) -> Tunnel:
        with self._tunnel_lock:
            tunnel = self._tunnels.get(peer_proxy)
        if tunnel is None or not tunnel.alive:
            raise PeerUnavailable(
                f"proxy {self.name!r} has no live tunnel to {peer_proxy!r}"
            )
        return tunnel

    def ranked_peers(self, candidates: list[str]) -> list[str]:
        """Order candidate peers by health: alive, then unknown, then dead.

        Dead peers stay in the list — last — so callers still reach them
        when every healthier option fails (the detector can be stale),
        but degraded sites are routed around first.
        """
        alive: list[str] = []
        unknown: list[str] = []
        dead: list[str] = []
        for peer in candidates:
            try:
                state = self.health.state_of(peer)
            except KeyError:
                unknown.append(peer)
                continue
            if state is PeerState.ALIVE:
                alive.append(peer)
            elif state is PeerState.DEAD:
                dead.append(peer)
            else:
                unknown.append(peer)
        return alive + unknown + dead

    def peers(self) -> list[str]:
        with self._tunnel_lock:
            return sorted(self._tunnels)

    # ------------------------------------------------------------------
    # Control protocol
    # ------------------------------------------------------------------

    def _send_control(self, tunnel: Tunnel, message: ControlMessage) -> None:
        message.sender = self.name
        tunnel.send(message.to_frame())

    def _send_control_many(
        self, tunnel: Tunnel, messages: list
    ) -> None:
        """Group-commit a burst of replies: one vectored write for all."""
        for message in messages:
            message.sender = self.name
        tunnel.send_many([message.to_frame() for message in messages])

    def request(
        self,
        peer_proxy: str,
        op: int,
        body: Optional[dict] = None,
        timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        auth: Optional[bytes] = None,
    ) -> ControlMessage:
        """Send a control request to a peer and wait for the reply.

        Idempotent ops (see :data:`~repro.core.protocol.IDEMPOTENT_OPS`)
        are retried under the proxy's retry policy on per-attempt
        timeouts and tunnel send failures; ``timeout`` is the *total*
        deadline budget across attempts.  Everything else runs exactly
        once — a duplicated JOB_SUBMIT would execute twice.

        ``auth`` is an opaque token blob stamped on the outgoing message
        for the peer's :class:`TokenAuthGuard`.  When omitted and this
        proxy has a token service, guarded infrastructure ops are
        stamped with the proxy's own service token automatically.

        Every request runs inside a span: the span's context is stamped
        on the outgoing message, so the peer's handler span becomes its
        child and a cross-site round trip reads as one trace.
        """
        self._m_req_sent.inc()
        span = self.obs.spans.start(
            f"request.{Op.name_of(op)}",
            parent=current_trace(),
            tags={"peer": peer_proxy},
        )
        try:
            with use_trace(span.context):
                return self._request_with_retry(
                    peer_proxy, op, body, timeout, retry, auth
                )
        except ProxyError as exc:
            span.tags["error"] = str(exc)
            raise
        finally:
            span.finish()

    def _request_with_retry(
        self,
        peer_proxy: str,
        op: int,
        body: Optional[dict],
        timeout: float,
        retry: Optional[RetryPolicy],
        auth: Optional[bytes] = None,
    ) -> ControlMessage:
        policy = retry if retry is not None else self.retry_policy
        idempotent = op in IDEMPOTENT_OPS
        if policy is None or not idempotent or policy.max_attempts <= 1:
            return self._request_once(peer_proxy, op, body, timeout, auth)
        # Each attempt gets an equal slice of the budget so a swallowed
        # request leaves room for its retries within ``timeout``.
        slice_timeout = timeout / policy.max_attempts
        policy = dataclasses.replace(policy, deadline=timeout)
        attempts = 0

        def attempt(deadline):
            nonlocal attempts
            attempts += 1
            if attempts > 1:
                self._m_req_retries.inc()
            return self._request_once(
                peer_proxy,
                op,
                body,
                max(deadline.clamp(slice_timeout), 0.001),
                auth,
            )

        try:
            return policy.call(attempt, idempotent=True)
        except RetryError as exc:
            raise exc.last

    def _request_once(
        self,
        peer_proxy: str,
        op: int,
        body: Optional[dict],
        timeout: float,
        auth: Optional[bytes] = None,
    ) -> ControlMessage:
        try:
            tunnel = self.tunnel_to(peer_proxy)
        except PeerUnavailable:
            self._m_req_unavailable.inc()
            raise
        message = ControlMessage(op=op, body=body or {}, sender=self.name)
        if auth is None and self.tokens is not None and op in _AUTO_STAMP_OPS:
            auth = self._service_token_blob()
        if auth is not None:
            message.auth = auth
        ctx = current_trace()
        if ctx is not None:
            message.trace = ctx.to_wire()
        self._tracker.expect(message)
        with self._inflight_lock:
            self._inflight_by_peer.setdefault(peer_proxy, set()).add(
                message.message_id
            )
        try:
            try:
                self._send_control(tunnel, message)
            except TunnelError as exc:
                self._m_req_unavailable.inc()
                raise PeerUnavailable(
                    f"send to {peer_proxy!r} failed: tunnel closed ({exc})"
                ) from exc
            try:
                reply = self._tracker.wait(message.message_id, timeout=timeout)
            except ProtocolError as exc:
                self._m_req_timeouts.inc()
                raise RequestTimeout(
                    f"{Op.name_of(op)} to {peer_proxy!r} got no reply "
                    f"within {timeout:.3f}s"
                ) from exc
        finally:
            with self._inflight_lock:
                self._inflight_by_peer.get(peer_proxy, set()).discard(
                    message.message_id
                )
        if reply.op == Op.ERROR:
            if reply.body.get("cancelled"):
                self._m_req_unavailable.inc()
                raise PeerUnavailable(
                    f"request to {peer_proxy!r} cancelled: "
                    f"{reply.body.get('error')}"
                )
            raise ProxyError(
                f"peer {peer_proxy!r} reported error: {reply.body.get('error')}"
            )
        return reply

    def _on_control(self, tunnel: Tunnel, frame: Frame) -> None:
        message = self.pipeline.decode(frame)
        if message is None:
            return  # corrupt control traffic is discarded
        self.last_heard[tunnel.peer_name] = self.clock()
        self.health.heard_from(tunnel.peer_name)
        if message.is_reply():
            self._tracker.fulfil(message)
            return
        self.pipeline.dispatch(
            message,
            tunnel.peer_name,
            respond=lambda reply: self._send_control(tunnel, reply),
        )

    def _on_control_batch(self, tunnel: Tunnel, frames: list) -> None:
        """One drained backlog of control frames → one dispatch pass.

        Liveness bookkeeping is amortised over the burst, replies and
        fulfilments happen in arrival order, and every inline reply goes
        back through one ``send_many`` group commit instead of a syscall
        per message.
        """
        requests: list = []
        fulfilled = False
        for frame in frames:
            message = self.pipeline.decode(frame)
            if message is None:
                continue  # corrupt control traffic is discarded
            if message.is_reply():
                self._tracker.fulfil(message)
                fulfilled = True
            else:
                requests.append(message)
        if not requests and not fulfilled:
            return
        self.last_heard[tunnel.peer_name] = self.clock()
        self.health.heard_from(tunnel.peer_name)
        if not requests:
            return
        self.pipeline.dispatch_batch(
            requests,
            tunnel.peer_name,
            respond=lambda reply: self._send_control(tunnel, reply),
            respond_many=lambda replies: self._send_control_many(tunnel, replies),
        )

    def _register_handlers(self) -> None:
        """Wire the op registry (built-ins) and the authorize guard.

        ``JOB_SUBMIT`` is ``blocking``: it runs user task code, which
        must never stall the shared event loop (and could deadlock it by
        waiting on traffic the same loop delivers).  Everything else is
        a bounded in-memory operation and runs inline.
        """
        pipe = self.pipeline
        pipe.add_guard(self._guard_sender_identity)
        pipe.register(Op.HELLO, lambda message, peer: None)
        pipe.register(
            Op.PING,
            lambda message, peer: message.reply(Op.PONG, {"proxy": self.name}),
        )
        pipe.register(
            Op.STATUS_QUERY,
            lambda message, peer: message.reply(
                Op.STATUS_REPORT, {"status": self.local_status()}
            ),
        )
        pipe.register(Op.LOCATE_RESOURCE, self._handle_locate)
        pipe.register(Op.OBS_DUMP, self._handle_obs_dump)
        pipe.register(Op.AUTH_CHECK, self._handle_auth_check)
        pipe.register(Op.JOB_SUBMIT, self._handle_job_submit, blocking=True)
        pipe.register(
            Op.MPI_START, lambda message, peer: self._handle_mpi_start(message)
        )
        pipe.register(Op.MPI_END, self._handle_mpi_end)
        pipe.set_default(
            lambda message, peer: message.reply(
                Op.ERROR, {"error": f"unhandled op {Op.name_of(message.op)}"}
            )
        )

    def _guard_sender_identity(self, message: ControlMessage, peer: str):
        """Authorize stage: the claimed sender must be the handshake peer.

        The tunnel already authenticated ``peer`` cryptographically; a
        message claiming to be from someone else is spoofed and silently
        discarded ("discarding unauthorized traffic").  Anonymous
        messages (empty sender) pass — identity then rests solely on the
        tunnel's certificate, which is what handlers key on anyway.
        """
        if message.sender and message.sender != peer:
            return DROP
        return None

    def _handle_locate(
        self, message: ControlMessage, peer: str
    ) -> ControlMessage:
        node = message.body.get("node", "")
        site = self.directory.find_node(node)
        return message.reply(Op.RESOURCE_FOUND, {"node": node, "site": site})

    def _handle_mpi_end(
        self, message: ControlMessage, peer: str
    ) -> ControlMessage:
        self.end_app(message.body.get("app", ""))
        return message.reply(Op.MPI_ENDED, {})

    def _handle_obs_dump(
        self, message: ControlMessage, peer: str
    ) -> ControlMessage:
        dump = self.observability(
            trace_id=message.body.get("trace"),
            max_spans=message.body.get("max_spans"),
        )
        return message.reply(Op.OBS_DATA, {"obs": dump})

    def observability(
        self,
        trace_id: Optional[str] = None,
        max_spans: Optional[int] = None,
    ) -> dict[str, Any]:
        """This proxy's full telemetry view: metrics, spans, link traffic.

        The body served to ``OBS_DUMP`` peers and to the local UI; only
        this site's data, compiled fresh on each call.
        """
        dump = self.obs.dump(trace_id=trace_id, max_spans=max_spans)
        with self._tunnel_lock:
            tunnels = dict(self._tunnels)
        dump["tunnels"] = {
            peer_name: {
                "alive": tunnel.alive,
                "cipher_suite": tunnel.cipher_suite,
                "frames_sent": tunnel.stats.frames_sent,
                "frames_received": tunnel.stats.frames_received,
                "bytes_sent": tunnel.stats.bytes_sent,
                "bytes_received": tunnel.stats.bytes_received,
            }
            for peer_name, tunnel in tunnels.items()
        }
        dump["health"] = {
            peer_name: self.health.state_of(peer_name).value
            for peer_name in tunnels
            if self.health.is_watching(peer_name)
        }
        dump["auth"] = {
            "mode": auth_mode(),
            "token_service": self.tokens is not None,
            "revocation_epoch": (
                self.tokens.epoch if self.tokens is not None else 0
            ),
            "tickets": {
                "issued": self.ticket_keeper.issued,
                "redeemed": self.ticket_keeper.redeemed,
                "rejected": self.ticket_keeper.rejected,
            },
        }
        if self._shard_manager is not None:
            # One folded snapshot for the whole worker fleet: per-worker
            # registries are collected over SHARD_STATS and summed here,
            # so a sharded proxy still answers OBS_DUMP with one view.
            try:
                dump["shards"] = self._shard_manager.folded_snapshot()
            except Exception as exc:
                dump["shards"] = {"error": str(exc)}
        sanitizer = racesan.active()
        dump["racesan"] = (
            sanitizer.stats() if sanitizer is not None else {"enabled": False}
        )
        return dump

    def attach_shards(self, manager) -> None:
        """Adopt a :class:`~repro.core.shardmgr.ShardManager` fleet.

        The fleet serves the data plane on its own port; this proxy's
        role is observability and lifecycle — ``OBS_DUMP`` folds the
        workers' registries into the dump, and :meth:`shutdown` stops
        the fleet with the proxy.
        """
        self._shard_manager = manager

    def attach_wms(self, wms) -> None:
        """Adopt a :class:`~repro.control.wms.WorkloadManager`.

        This proxy becomes the grid's queue authority: it serves the
        JOB_QSUBMIT/JOB_CLAIM/JOB_STATUS/JOB_DONE ops (blocking — the
        manager takes a lock and may journal to disk, neither of which
        belongs on the event loop), and wires the failure detector so a
        claiming peer's death releases its leases back to the queue.
        """
        if self.wms is not None:
            raise ProxyError(
                f"proxy {self.name!r} already has a workload manager"
            )
        self.wms = wms
        pipe = self.pipeline
        pipe.register(Op.JOB_QSUBMIT, self._handle_wms_submit, blocking=True)
        pipe.register(Op.JOB_CLAIM, self._handle_wms_claim, blocking=True)
        pipe.register(Op.JOB_STATUS, self._handle_wms_status, blocking=True)
        pipe.register(Op.JOB_DONE, self._handle_wms_done, blocking=True)
        self.health.on_dead.append(self._wms_pilot_lost)

    def _wms_pilot_lost(self, peer: str) -> None:
        """Requeue-on-site-death: a dead peer's claims return to the queue.

        The detector fires this exactly once per alive→dead transition;
        ``release_pilot`` is idempotent anyway (a peer that never
        claimed, or already reported, releases nothing).
        """
        if self.wms is not None:
            self.wms.release_pilot(peer, error=f"pilot {peer} declared dead")

    # ------------------------------------------------------------------
    # Layer 2: authentication and permissions
    # ------------------------------------------------------------------

    def authenticate_user(self, userid: str, password: str) -> Credential:
        """Origin-side authentication; returns a proxy-signed credential."""
        self.users.authenticate_password(userid, password)  # may raise
        return Credential.issue(userid, self.name, self.clock(), self.keypair)

    def _verify_remote_credential(self, blob: bytes, peer: str) -> Credential:
        """Destination-side check of a credential signed by the peer proxy."""
        credential = Credential.from_bytes(blob)
        tunnel = self.tunnel_to(peer)
        # The clock is passed as a callable so the freshness check reads
        # the seeded simulation clock at the moment of verification.
        credential.verify(tunnel.peer_certificate.public_key, self.clock)
        return credential

    def _handle_auth_check(self, message: ControlMessage, peer: str) -> ControlMessage:
        try:
            credential = self._verify_remote_credential(
                message.body["credential"], peer
            )
            self.acl.check(
                credential.userid,
                message.body.get("resource", f"site:{self.site.name}"),
                message.body.get("action", "access"),
            )
        except (AuthenticationError, PermissionDenied, KeyError) as exc:
            return message.reply(Op.AUTH_DENIED, {"reason": str(exc)})
        return message.reply(Op.AUTH_OK, {"userid": credential.userid})

    # ------------------------------------------------------------------
    # Layer 2b: token control plane (login once → HMAC bearer tokens)
    # ------------------------------------------------------------------

    def attach_token_service(self, service: TokenService, guard: bool = True) -> None:
        """Adopt a :class:`~repro.security.tokens.TokenService`.

        This proxy then serves the AUTH_LOGIN/AUTH_REFRESH/AUTH_REVOKE/
        AUTH_RLIST ops and — unless ``guard`` is False or ``$REPRO_AUTH``
        is ``legacy`` — installs a :class:`TokenAuthGuard` so guarded ops
        (jobs, WMS, MPI) require a valid bearer token.  Login does PBKDF2
        and token minting, and revoke fans heartbeats out to every
        tunnel, so both run ``blocking``; refresh and the revocation-list
        read are cheap HMAC/dict work and stay inline.
        """
        if self.tokens is not None:
            raise ProxyError(f"proxy {self.name!r} already has a token service")
        self.tokens = service
        pipe = self.pipeline
        pipe.register(Op.AUTH_LOGIN, self._handle_auth_login, blocking=True)
        pipe.register(Op.AUTH_REFRESH, self._handle_auth_refresh)
        pipe.register(Op.AUTH_REVOKE, self._handle_auth_revoke, blocking=True)
        pipe.register(Op.AUTH_RLIST, self._handle_auth_rlist)
        if guard and auth_mode() != "legacy":
            self._token_guard = TokenAuthGuard(service, obs=self.obs)
            pipe.add_guard(self._token_guard)

    def _service_token_blob(self) -> Optional[bytes]:
        """This proxy's own bearer token, re-minted shortly before expiry.

        Stamped on guarded infrastructure requests (WMS claims, MPI
        control) so proxy-to-proxy traffic passes peers' token guards
        without a per-request login round trip.
        """
        service = self.tokens
        if service is None:
            return None
        token = self._service_token
        if token is None or token.expires_at - self.clock() < 30.0:
            # Benign race: two threads may re-mint concurrently; both
            # tokens are valid and the last write wins.
            token = service.mint_service_token(self.name)
            self._service_token = token
            self._service_blob = token.to_bytes()
        return self._service_blob

    def _handle_auth_login(self, message: ControlMessage, peer: str) -> ControlMessage:
        body = message.body
        userid = body.get("userid", "")
        scopes = body.get("scopes")
        try:
            if "signature" in body:
                token = self.tokens.login_signature(
                    userid,
                    body.get("message", b""),
                    body["signature"],
                    scopes=scopes,
                )
            else:
                token = self.tokens.login(
                    userid, body.get("password", ""), scopes=scopes
                )
        except (AuthenticationError, TokenError) as exc:
            return message.reply(Op.AUTH_DENIED, {"reason": str(exc)})
        return message.reply(
            Op.AUTH_TOKEN,
            {"token": token.to_bytes(), "expires_at": token.expires_at},
        )

    def _handle_auth_refresh(self, message: ControlMessage, peer: str) -> ControlMessage:
        try:
            token = self.tokens.refresh(message.body.get("token", b""))
        except TokenError as exc:
            return message.reply(Op.AUTH_DENIED, {"reason": str(exc)})
        return message.reply(
            Op.AUTH_TOKEN,
            {"token": token.to_bytes(), "expires_at": token.expires_at},
        )

    def _handle_auth_revoke(self, message: ControlMessage, peer: str) -> ControlMessage:
        body = message.body
        try:
            if "token" in body:
                changed = self.tokens.revoke(body["token"])
            elif "userid" in body:
                changed = self.tokens.revoke_user(body["userid"])
            else:
                return message.reply(
                    Op.ERROR, {"error": "revoke needs a token or a userid"}
                )
        except TokenError as exc:
            return message.reply(Op.ERROR, {"error": str(exc)})
        if changed:
            # Push the bumped epoch out now rather than waiting for the
            # next heartbeat tick: peers see it and pull within one round
            # trip, which is what bounds accept-after-revoke exposure.
            self.send_heartbeats()
        return message.reply(Op.AUTH_REVOKED, {"epoch": self.tokens.epoch})

    def _handle_auth_rlist(self, message: ControlMessage, peer: str) -> ControlMessage:
        return message.reply(
            Op.AUTH_RLIST_DATA, {"rlist": self.tokens.rlist_wire()}
        )

    def auth_login(
        self,
        peer_proxy: str,
        userid: str,
        password: str,
        scopes=None,
        timeout: float = 30.0,
    ) -> bytes:
        """Log in at a remote proxy; returns the issued token blob."""
        body: dict[str, Any] = {"userid": userid, "password": password}
        if scopes is not None:
            body["scopes"] = list(scopes)
        reply = self.request(peer_proxy, Op.AUTH_LOGIN, body, timeout=timeout)
        if reply.op != Op.AUTH_TOKEN:
            raise AuthenticationError(
                str(reply.body.get("reason", "login denied"))
            )
        return reply.body["token"]

    def auth_refresh(
        self, peer_proxy: str, token_blob: bytes, timeout: float = 30.0
    ) -> bytes:
        """Swap a live token for a fresh one at the issuing proxy."""
        reply = self.request(
            peer_proxy, Op.AUTH_REFRESH, {"token": token_blob}, timeout=timeout
        )
        if reply.op != Op.AUTH_TOKEN:
            raise AuthenticationError(
                str(reply.body.get("reason", "refresh denied"))
            )
        return reply.body["token"]

    def auth_revoke(
        self,
        peer_proxy: str,
        token_blob: Optional[bytes] = None,
        userid: Optional[str] = None,
        timeout: float = 30.0,
    ) -> int:
        """Revoke a token (or a user's whole fleet) at a remote proxy.

        Returns the peer's revocation epoch after the revoke; gossip
        carries it to the rest of the grid from there.
        """
        body: dict[str, Any] = {}
        if token_blob is not None:
            body["token"] = token_blob
        if userid is not None:
            body["userid"] = userid
        reply = self.request(peer_proxy, Op.AUTH_REVOKE, body, timeout=timeout)
        return int(reply.body.get("epoch", 0))

    def _schedule_rlist_pull(self, peer: str) -> None:
        """Bounce a revocation-list pull off the delivery thread.

        Heartbeats arrive on the I/O loop; the pull is a blocking
        request/reply, so it must run on the dispatch pool.  An in-flight
        set dedups the burst of repoch heartbeats a revocation causes.
        """
        with self._rlist_lock:
            if peer in self._rlist_pulling:
                return
            self._rlist_pulling.add(peer)
        try:
            self.pipeline.submit_blocking(
                lambda: self._pull_revocations(peer)
            )
        except RuntimeError:
            with self._rlist_lock:
                self._rlist_pulling.discard(peer)

    def _pull_revocations(self, peer: str) -> None:
        """Anti-entropy pull: fetch the peer's revocation list and merge."""
        try:
            if self._closing.is_set() or self.tokens is None:
                return
            self._m_auth_pulls.inc()
            try:
                reply = self.request(peer, Op.AUTH_RLIST, timeout=10.0)
            except ProxyError:
                return  # peer died mid-pull; the next heartbeat retriggers
            wire = reply.body.get("rlist")
            if isinstance(wire, dict):
                try:
                    if self.tokens.merge_rlist(wire):
                        self._m_auth_merged.inc()
                except TokenError:
                    pass  # malformed gossip is discarded, never fatal
        finally:
            with self._rlist_lock:
                self._rlist_pulling.discard(peer)

    # ------------------------------------------------------------------
    # Layer 3: monitoring and jobs
    # ------------------------------------------------------------------

    def local_status(self) -> list[dict[str, Any]]:
        """This site's station states (the per-proxy collection duty)."""
        return [
            {
                "node": s.node,
                "site": s.site,
                "cpu_speed": s.cpu_speed,
                "ram_free": s.ram_free,
                "disk_free": s.disk_free,
                "running_tasks": s.running_tasks,
                "tasks_completed": s.tasks_completed,
                "alive": s.alive,
            }
            for s in self.site.statuses()
        ]

    def query_peer_status(self, peer_proxy: str, timeout: float = 30.0) -> list[dict]:
        reply = self.request(peer_proxy, Op.STATUS_QUERY, timeout=timeout)
        return reply.body["status"]

    def pick_node(self) -> str:
        """Least-loaded alive node at this site."""
        candidates = self.site.alive_nodes()
        if not candidates:
            raise ProxyError(f"site {self.site.name!r} has no alive nodes")
        return min(candidates, key=lambda n: (n.running_tasks, n.name)).name

    def submit_job(
        self,
        userid: str,
        password: str,
        task: str,
        params: Optional[dict] = None,
        target_site: Optional[str] = None,
        timeout: float = 60.0,
    ) -> Any:
        """Full job path: authenticate, authorise at origin, run or forward.

        The origin proxy validates the user and the ACL; remote targets
        revalidate the credential and the ACL at the destination, exactly
        as the paper specifies.

        With a token service attached (and the guard active), the legacy
        signature is kept but the mechanics change: the password buys one
        login, and the job travels under the resulting bearer token via
        :meth:`submit_job_with_token` — no per-request RSA.
        """
        target_site = target_site or self.site.name
        if self.tokens is not None and self._token_guard is not None:
            token = self.tokens.login(userid, password)
            return self.submit_job_with_token(
                token.to_bytes(), task, params, target_site, timeout
            )
        credential = self.authenticate_user(userid, password)
        self.acl.check(userid, f"site:{target_site}", "submit")
        if target_site == self.site.name:
            node = self.pick_node()
            result, elapsed = self._timed_execute(node, task, params, timeout)
            self._account(userid, self.site.name, node, task, elapsed)
            return result
        body = {
            "credential": credential.to_bytes(),
            "task": task,
            "params": params or {},
            "resource": f"site:{target_site}",
            "origin": self.site.name,
        }
        # Sites may run several proxies; fail over on connectivity errors
        # (a policy rejection from a live proxy is final, not retried).
        # Peers the failure detector has declared dead are tried last, so
        # a degraded site is routed around without waiting for errors.
        last_error: Optional[ProxyError] = None
        for peer in self.ranked_peers(self.directory.proxies_of_site(target_site)):
            try:
                reply = self.request(peer, Op.JOB_SUBMIT, body, timeout=timeout)
            except ProxyError as exc:
                last_error = exc
                continue
            if reply.op == Op.JOB_REJECTED:
                raise ProxyError(
                    f"job rejected by {peer!r}: {reply.body.get('reason')}"
                )
            return reply.body.get("result")
        raise ProxyError(
            f"no proxy of site {target_site!r} reachable: {last_error}"
        )

    def submit_job_with_token(
        self,
        token_blob: bytes,
        task: str,
        params: Optional[dict] = None,
        target_site: Optional[str] = None,
        timeout: float = 60.0,
    ) -> Any:
        """Login-once job path: authorise by bearer token, delegate to hop.

        The origin checks the token (scope ``jobs:submit``) and the ACL;
        a remote target receives an *attenuated* delegation — scoped to
        job submission only and recording this proxy in the chain — so a
        compromised destination cannot replay the user's full token.
        """
        service = self.tokens
        if service is None:
            raise ProxyError(f"proxy {self.name!r} has no token service")
        target_site = target_site or self.site.name
        claims = service.verify_blob(token_blob, required_scope="jobs:submit")
        self.acl.check(claims.userid, f"site:{target_site}", "submit")
        if target_site == self.site.name:
            node = self.pick_node()
            result, elapsed = self._timed_execute(node, task, params, timeout)
            self._account(claims.userid, self.site.name, node, task, elapsed)
            return result
        delegated = service.delegate(
            token_blob, delegate_to=self.name, scopes=("jobs:submit",)
        )
        body = {
            "task": task,
            "params": params or {},
            "resource": f"site:{target_site}",
            "origin": self.site.name,
        }
        last_error: Optional[ProxyError] = None
        for peer in self.ranked_peers(self.directory.proxies_of_site(target_site)):
            try:
                reply = self.request(
                    peer,
                    Op.JOB_SUBMIT,
                    body,
                    timeout=timeout,
                    auth=delegated.to_bytes(),
                )
            except ProxyError as exc:
                last_error = exc
                continue
            if reply.op in (Op.JOB_REJECTED, Op.AUTH_DENIED):
                reason = reply.body.get("reason") or reply.body.get("error")
                raise ProxyError(f"job rejected by {peer!r}: {reason}")
            return reply.body.get("result")
        raise ProxyError(
            f"no proxy of site {target_site!r} reachable: {last_error}"
        )

    def _handle_job_submit(self, message: ControlMessage, peer: str) -> ControlMessage:
        claims: Optional[Token] = getattr(message, "auth_claims", None)
        if claims is not None:
            # Token plane: the guard already verified signature, expiry,
            # revocation and the jobs:submit scope; re-checking the ACL
            # here is the destination's own policy say (defense in
            # depth — matching the paper's check-at-both-ends rule).
            userid = claims.userid
            try:
                self.acl.check(
                    userid,
                    message.body.get("resource", f"site:{self.site.name}"),
                    "submit",
                )
            except PermissionDenied as exc:
                return message.reply(Op.JOB_REJECTED, {"reason": str(exc)})
        else:
            try:
                credential = self._verify_remote_credential(
                    message.body["credential"], peer
                )
                self.acl.check(
                    credential.userid,
                    message.body.get("resource", f"site:{self.site.name}"),
                    "submit",
                )
            except (AuthenticationError, PermissionDenied, KeyError) as exc:
                return message.reply(Op.JOB_REJECTED, {"reason": str(exc)})
            userid = credential.userid
        try:
            node = self.pick_node()
            result, elapsed = self._timed_execute(
                node,
                message.body.get("task", "noop"),
                message.body.get("params", {}),
                timeout=60.0,
            )
        except Exception as exc:
            return message.reply(Op.JOB_REJECTED, {"reason": f"execution: {exc}"})
        self._account(
            userid,
            message.body.get("origin", ""),
            node,
            message.body.get("task", "noop"),
            elapsed,
        )
        return message.reply(Op.JOB_RESULT, {"result": result, "node": node})

    def _timed_execute(self, node, task, params, timeout):
        import time as _time

        start = _time.perf_counter()
        result = self.site.nodes[node].execute(task, params, timeout=timeout)
        return result, _time.perf_counter() - start

    def _account(self, userid, origin_site, node, task, elapsed) -> None:
        """Record executed work in the usage ledger, if one is attached.

        Wall time stands in for CPU seconds — the single-worker node
        model makes them equivalent for accounting purposes.
        """
        if self.ledger is None:
            return
        self.ledger.record(
            userid=userid,
            origin_site=origin_site or self.site.name,
            executed_site=self.site.name,
            node=node,
            task=task,
            cpu_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    # Workload manager: authority handlers and pilot-side helpers
    # ------------------------------------------------------------------

    def _handle_wms_submit(self, message: ControlMessage, peer: str) -> ControlMessage:
        try:
            result = self.wms.submit(JobSpec.from_wire(message.body))
        except WmsError as exc:
            return message.reply(Op.ERROR, {"error": str(exc)})
        return message.reply(Op.JOB_QUEUED, result)

    def _handle_wms_claim(self, message: ControlMessage, peer: str) -> ControlMessage:
        body = message.body
        try:
            # The pilot identity is the *authenticated* tunnel peer, not
            # a body field: it is the name the failure detector will
            # report dead, so leases key on it.
            assigned = self.wms.claim(
                pilot=peer,
                site=body.get("site", ""),
                capability=body.get("capability"),
                count=int(body.get("count", 1)),
                claim_id=body.get("claim_id"),
                gap=body.get("gap"),
            )
        except WmsError as exc:
            return message.reply(Op.ERROR, {"error": str(exc)})
        return message.reply(Op.JOB_ASSIGN, {"assigned": assigned})

    def _handle_wms_status(self, message: ControlMessage, peer: str) -> ControlMessage:
        try:
            result = self.wms.status(message.body.get("job_id"))
        except WmsError as exc:
            return message.reply(Op.ERROR, {"error": str(exc)})
        return message.reply(Op.JOB_STATE, result)

    def _handle_wms_done(self, message: ControlMessage, peer: str) -> ControlMessage:
        body = message.body
        try:
            if body.get("ok", True):
                result = self.wms.complete(
                    body.get("job_id", ""), body.get("token", "")
                )
            else:
                result = self.wms.fail(
                    body.get("job_id", ""),
                    body.get("token", ""),
                    body.get("error", ""),
                )
        except WmsError as exc:
            return message.reply(Op.ERROR, {"error": str(exc)})
        return message.reply(Op.JOB_DONE_ACK, result)

    def wms_submit(
        self, authority: str, spec: JobSpec, timeout: float = 30.0
    ) -> dict[str, Any]:
        """Enqueue a job at the authority proxy (idempotent on job_id)."""
        reply = self.request(authority, Op.JOB_QSUBMIT, spec.to_wire(), timeout=timeout)
        return reply.body

    def wms_claim(
        self,
        authority: str,
        count: int = 1,
        gap: Optional[float] = None,
        timeout: float = 30.0,
    ) -> list[dict[str, Any]]:
        """Pilot-style claim: ask the authority for work this site fits.

        The capability travels with the claim — compiled fresh from this
        site's Layer-3 status — and a generated ``claim_id`` makes the
        round trip idempotent: the retry policy may re-send the same
        claim, and the authority will replay the same assignment.
        """
        body: dict[str, Any] = {
            "site": self.site.name,
            "capability": site_capability(self.local_status()),
            "count": count,
            "claim_id": f"{self.name}:c{next(self._wms_claim_ids)}",
        }
        if gap is not None:
            body["gap"] = gap
        reply = self.request(authority, Op.JOB_CLAIM, body, timeout=timeout)
        return reply.body["assigned"]

    def wms_done(
        self,
        authority: str,
        job_id: str,
        token: str,
        ok: bool = True,
        error: str = "",
        timeout: float = 30.0,
    ) -> dict[str, Any]:
        """Report one attempt's outcome (idempotent on the claim token)."""
        body: dict[str, Any] = {"job_id": job_id, "token": token, "ok": ok}
        if error:
            body["error"] = error
        reply = self.request(authority, Op.JOB_DONE, body, timeout=timeout)
        return reply.body

    def wms_status(
        self,
        authority: str,
        job_id: Optional[str] = None,
        timeout: float = 30.0,
    ) -> dict[str, Any]:
        """Queue counters (default) or one job's state from the authority."""
        body = {} if job_id is None else {"job_id": job_id}
        reply = self.request(authority, Op.JOB_STATUS, body, timeout=timeout)
        return reply.body

    # ------------------------------------------------------------------
    # Layer 4: MPI multiplexing
    # ------------------------------------------------------------------

    def start_app(
        self,
        app_id: str,
        rank_to_site: dict[int, str],
        rank_to_node: dict[int, str],
        announce: bool = True,
    ) -> GridRouter:
        """Create this proxy's address space (and tell the peers to).

        Called on the originating proxy; with ``announce`` it sends
        MPI_START to every other participating site's proxy so they build
        their own address spaces before any rank starts talking.
        """
        router = self._create_space(app_id, rank_to_site, rank_to_node)
        if announce:
            participating = {s for s in rank_to_site.values() if s != self.site.name}
            wire_sites = {str(r): s for r, s in rank_to_site.items()}
            wire_nodes = {str(r): n for r, n in rank_to_node.items()}
            for site in sorted(participating):
                # Announce to *every* proxy of the site, not just the
                # primary: backups then hold the address space too, so
                # MPI traffic can fail over to them mid-application.
                started = False
                last_error: Optional[ProxyError] = None
                for peer in self.directory.proxies_of_site(site):
                    try:
                        reply = self.request(
                            peer,
                            Op.MPI_START,
                            {"app": app_id, "sites": wire_sites, "nodes": wire_nodes},
                        )
                    except ProxyError as exc:
                        last_error = exc
                        continue
                    started = started or reply.op == Op.MPI_STARTED
                if not started:
                    raise ProxyError(
                        f"no proxy of site {site!r} started app {app_id!r}: "
                        f"{last_error}"
                    )
        return router

    def _create_space(
        self, app_id: str, rank_to_site: dict[int, str], rank_to_node: dict[int, str]
    ) -> GridRouter:
        with self._space_lock:
            if app_id in self._spaces:
                raise ProxyError(f"app {app_id!r} already started at {self.name!r}")
            space = AppSpace(app_id=app_id, site=self.site.name)
            space.populate(
                rank_to_site, rank_to_node, self.directory.site_to_proxy_map()
            )
            router = GridRouter(self, space)
            self._spaces[app_id] = space
            self._routers[app_id] = router
        # First proxy of the site to start the app owns the canonical
        # router (ranks bind to it); backups route inbound frames to it.
        self.site.register_app_router(app_id, router)
        return router

    def _handle_mpi_start(self, message: ControlMessage) -> ControlMessage:
        app_id = message.body["app"]
        rank_to_site = {int(r): s for r, s in message.body["sites"].items()}
        rank_to_node = {int(r): n for r, n in message.body["nodes"].items()}
        self._create_space(app_id, rank_to_site, rank_to_node)
        return message.reply(Op.MPI_STARTED, {"app": app_id})

    def router_for(self, app_id: str) -> GridRouter:
        with self._space_lock:
            try:
                return self._routers[app_id]
            except KeyError:
                raise ProxyError(
                    f"no app {app_id!r} at proxy {self.name!r}"
                ) from None

    def app_space(self, app_id: str) -> AppSpace:
        with self._space_lock:
            try:
                return self._spaces[app_id]
            except KeyError:
                raise ProxyError(
                    f"no app {app_id!r} at proxy {self.name!r}"
                ) from None

    def forward_mpi(
        self,
        app_id: str,
        peer_proxy: str,
        source: int,
        dest: int,
        tag: int,
        payload_blob: bytes,
    ) -> None:
        """Send one multiplexed MPI message through the secure tunnel.

        The virtual slave's preferred peer goes first; if its tunnel is
        down, the message fails over to the destination site's other
        proxies (every participating proxy holds the app's address space
        and delivers through the site-level router), so one proxy death
        degrades only its own site.
        """
        frame = Frame(
            kind=FrameKind.MPI,
            headers={"app": app_id, "src": source, "dst": dest, "tag": tag},
            payload=payload_blob,
        )
        candidates = [peer_proxy]
        try:
            dest_site = self.app_space(app_id).rank_to_site.get(dest)
            if dest_site is not None:
                for alt in self.ranked_peers(
                    self.directory.proxies_of_site(dest_site)
                ):
                    if alt not in candidates:
                        candidates.append(alt)
        except Exception:
            pass  # directory gaps: fall back to the preferred peer only
        last_error: Optional[Exception] = None
        for peer in candidates:
            try:
                self.tunnel_to(peer).send(frame)
                return
            except (PeerUnavailable, TunnelError) as exc:
                last_error = exc
        raise PeerUnavailable(
            f"no route for MPI app {app_id!r} rank {dest}: {last_error}"
        )

    def _on_mpi(self, tunnel: Tunnel, frame: Frame) -> None:
        self.last_heard[tunnel.peer_name] = self.clock()
        self.health.heard_from(tunnel.peer_name)
        try:
            app_id = frame.headers["app"]
            # Prefer the site-level router: if this proxy is a backup for
            # its site, the ranks are blocked on the endpoints of the
            # proxy that originated the space, not on this proxy's own.
            router = self.site.app_router(app_id) or self.router_for(app_id)
            router.deliver_remote(
                source=frame.headers["src"],
                dest=frame.headers["dst"],
                tag=frame.headers["tag"],
                payload_blob=frame.payload,
            )
        except (KeyError, ProxyError):
            pass  # traffic for unknown apps is discarded

    def end_app(self, app_id: str, announce: bool = False) -> None:
        """Tear down an application's address space."""
        with self._space_lock:
            space = self._spaces.pop(app_id, None)
            router = self._routers.pop(app_id, None)
        if router is not None:
            self.site.unregister_app_router(app_id, router)
            router.close()
        if announce and space is not None:
            for site in {s for s in space.rank_to_site.values() if s != self.site.name}:
                for peer in self.directory.proxies_of_site(site):
                    try:
                        self.request(peer, Op.MPI_END, {"app": app_id})
                    except Exception:
                        pass  # best-effort teardown

    # ------------------------------------------------------------------
    # Explicit secure local channels
    # ------------------------------------------------------------------

    def open_secure_local_channel(self, node_keypair, node_certificate):
        """Give one local node an encrypted channel to its proxy.

        Intra-site traffic is cleartext by default ("based on the
        assumption that communication inside the site is already safe"),
        but the paper adds: "If a node in the site requires a safe
        channel, it can be made available by the proxy through an
        explicit call."  This is that call: the node presents its own
        CA-issued certificate, both ends run the standard handshake, and
        the node receives a secure channel on which the proxy services
        control requests (PING, STATUS_QUERY, LOCATE_RESOURCE, ...)
        exactly as it does for peer proxies.

        Returns the node-side :class:`SecureChannel`.
        """
        from repro.security.handshake import connect_secure
        from repro.transport.inproc import channel_pair

        node_raw, proxy_raw = channel_pair(
            name=f"{self.name}.local:{node_certificate.subject}"
        )
        result: dict = {}

        def proxy_side() -> None:
            try:
                tunnel = Tunnel.establish_server(
                    proxy_raw,
                    self.name,
                    self.keypair,
                    self.certificate,
                    self.trust_anchor,
                    self.clock,
                    expected_peer_role="node",
                )
            except TunnelError:
                return
            tunnel.on_frame(
                FrameKind.CONTROL, lambda f: self._on_control(tunnel, f)
            )
            tunnel.on_frame_batch(
                FrameKind.CONTROL, lambda fs: self._on_control_batch(tunnel, fs)
            )
            tunnel.start(self.io)
            result["tunnel"] = tunnel

        server = threading.Thread(  # gridlint: disable=GL102 -- one-shot peer for the loopback secure handshake; both sides block until it completes
            target=proxy_side, daemon=True, name=f"{self.name}-local-secure"
        )
        server.start()
        try:
            secure = connect_secure(
                node_raw,
                node_keypair,
                node_certificate,
                self.trust_anchor,
                self.clock,
                expected_peer_role="proxy",
            )
        except Exception as exc:
            server.join(timeout=30.0)
            raise ProxyError(
                f"proxy {self.name!r} rejected the local secure channel for "
                f"{node_certificate.subject!r}: {exc}"
            ) from exc
        server.join(timeout=30.0)
        if "tunnel" not in result:
            secure.close()
            raise ProxyError(
                f"proxy {self.name!r} rejected the local secure channel for "
                f"{node_certificate.subject!r}"
            )
        return secure

    # ------------------------------------------------------------------
    # Heartbeats (feeds the failure detector)
    # ------------------------------------------------------------------

    def send_heartbeats(self) -> None:
        """Emit one heartbeat on every live tunnel (callers own the period).

        With a token service attached the heartbeat also carries this
        proxy's revocation **epoch** (``repoch``) — the gossip digest.
        Peers behind it pull the full list over AUTH_RLIST; peers without
        the header (or without a token plane) ignore it, which is the
        control protocol's expandable-header rule at work.
        """
        headers: dict[str, Any] = {"from": self.name}
        if self.tokens is not None:
            headers["repoch"] = self.tokens.epoch
        with self._tunnel_lock:
            tunnels = list(self._tunnels.values())
        for tunnel in tunnels:
            try:
                tunnel.send(
                    Frame(kind=FrameKind.HEARTBEAT, headers=dict(headers))
                )
            except TunnelError:
                pass

    def start_heartbeats(self, interval: float, jitter: float = 0.1):
        """Heartbeat on a reactor timer instead of caller discipline.

        Every ``interval`` seconds (jittered ±``jitter``·interval so a
        grid of proxies doesn't beat in lockstep) the proxy emits
        heartbeats on all tunnels *and* re-evaluates the failure
        detector — silent peers transition to SUSPECT/DEAD on the timer,
        with no monitor thread and no manual ``check()`` calls.
        Idempotent; returns the timer handle.
        """
        if self._heartbeat_timer is None:
            from repro.transport.reactor import get_global_reactor

            self._heartbeat_timer = get_global_reactor().call_every(
                interval, self._heartbeat_tick, jitter=jitter
            )
        return self._heartbeat_timer

    def stop_heartbeats(self) -> None:
        timer, self._heartbeat_timer = self._heartbeat_timer, None
        if timer is not None:
            timer.cancel()

    def _heartbeat_tick(self) -> None:
        if self._closing.is_set():
            return
        self.send_heartbeats()
        self.health.check()

    def _on_heartbeat(self, tunnel: Tunnel, frame: Frame) -> None:
        self.last_heard[tunnel.peer_name] = self.clock()
        self.health.heard_from(tunnel.peer_name)
        if self.tokens is None:
            return
        repoch = frame.headers.get("repoch")
        if isinstance(repoch, int) and repoch > self.tokens.epoch:
            # The peer has revocations we lack.  This callback runs on
            # the delivery thread, so the pull (a blocking request) is
            # bounced onto the dispatch pool.
            self._schedule_rlist_pull(tunnel.peer_name)

    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        """False once shutdown began — this proxy serves no new traffic."""
        return not self._closing.is_set()

    def shutdown(self) -> None:
        """Stop serving, in dependency order, and reap every worker.

        Listener first (no new connections), then the accept loop and
        any in-flight handshakes are joined, *then* tunnels close and
        their delivery paths are joined, and finally the dispatch pool
        stops.  The old ordering closed the listener and tunnels in one
        breath with no joins, so a shutdown could race its own accept
        loop into installing a fresh tunnel on a half-dead proxy.
        """
        if self._closing.is_set():
            return
        self._closing.set()
        self.stop_heartbeats()
        if self._shard_manager is not None:
            self._shard_manager.stop()
        if self._listener is not None:
            self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        with self._handshake_lock:
            handshakes = list(self._handshake_threads)
            self._handshake_threads = []
        for worker in handshakes:
            worker.join(timeout=5.0)
        with self._tunnel_lock:
            tunnels = list(self._tunnels.values())
        for tunnel in tunnels:
            tunnel.close()
        for tunnel in tunnels:
            tunnel.join(timeout=5.0)
        self.pipeline.close()
        with self._space_lock:
            for router in self._routers.values():
                router.close()
            self._routers.clear()
            self._spaces.clear()

    def __repr__(self) -> str:
        return f"ProxyServer({self.name!r}, site={self.site.name!r})"

"""Sites: named collections of nodes behind a proxy.

A site models one administrative domain — a cluster or a LAN of
workstations.  In the live runtime, :class:`SiteNode` tracks a node's
capabilities and executes registered task kinds on a worker thread; the
simulation substrate models the same nodes analytically for the scaled
benchmarks.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Site", "SiteNode", "TaskRegistry", "NodeStatus"]


@dataclass(frozen=True)
class NodeStatus:
    """What the Grid API reports about one station."""

    node: str
    site: str
    cpu_speed: float
    ram_total: int
    ram_free: int
    disk_total: int
    disk_free: int
    running_tasks: int
    tasks_completed: int
    alive: bool


class TaskRegistry:
    """Named task implementations a site is willing to execute.

    Remote job submissions name a task kind plus plain-data parameters;
    arbitrary code never crosses the wire (remote frames are untrusted).
    """

    def __init__(self):
        self._tasks: dict[str, Callable[..., Any]] = {}

    def register(self, kind: str, fn: Callable[..., Any]) -> None:
        if kind in self._tasks:
            raise ValueError(f"task kind already registered: {kind!r}")
        self._tasks[kind] = fn

    def get(self, kind: str) -> Callable[..., Any]:
        try:
            return self._tasks[kind]
        except KeyError:
            raise KeyError(f"unknown task kind: {kind!r}") from None

    def kinds(self) -> list[str]:
        return sorted(self._tasks)


def _default_tasks() -> TaskRegistry:
    registry = TaskRegistry()
    registry.register("noop", lambda: None)
    registry.register("echo", lambda value=None: value)
    registry.register("sleep", lambda duration=0.0: time.sleep(duration))
    registry.register(
        "sum_range", lambda n=0: sum(range(int(n)))
    )  # a tiny CPU-bound kernel for demos
    return registry


class SiteNode:
    """One station: capabilities plus a single worker thread.

    The worker executes tasks one at a time (a 2003 workstation donates
    one CPU); queued tasks wait.  ``fail()`` simulates a crash for the
    failure-injection tests.
    """

    def __init__(
        self,
        name: str,
        site: str,
        cpu_speed: float = 1.0,
        ram_total: int = 1 << 30,
        disk_total: int = 40 << 30,
        tasks: Optional[TaskRegistry] = None,
    ):
        if cpu_speed <= 0:
            raise ValueError(f"cpu speed must be positive: {cpu_speed}")
        self.name = name
        self.site = site
        self.cpu_speed = cpu_speed
        self.ram_total = ram_total
        self.disk_total = disk_total
        self.ram_used = 0
        self.disk_used = 0
        self.tasks = tasks or _default_tasks()
        self.tasks_completed = 0
        self._queue: "queue.Queue" = queue.Queue()
        self._alive = threading.Event()
        self._alive.set()
        self._running = 0
        self._lock = threading.Lock()
        self._worker = threading.Thread(  # gridlint: disable=GL102 -- the paper's execution model: each station donates one CPU as a dedicated worker
            target=self._work_loop, daemon=True, name=f"node-{name}"
        )
        self._worker.start()

    def _work_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            kind, params, done = item
            if not self._alive.is_set():
                done["error"] = RuntimeError(f"node {self.name!r} is down")
                done["event"].set()
                continue
            with self._lock:
                self._running += 1
            try:
                fn = self.tasks.get(kind)
                done["result"] = fn(**params)
            except BaseException as exc:
                done["error"] = exc
            finally:
                with self._lock:
                    self._running -= 1
                    self.tasks_completed += 1
                done["event"].set()

    def execute(
        self, kind: str, params: Optional[dict] = None, timeout: float = 60.0
    ) -> Any:
        """Run a registered task to completion; raises its error."""
        if not self._alive.is_set():
            raise RuntimeError(f"node {self.name!r} is down")
        done: dict = {"event": threading.Event(), "result": None, "error": None}
        self._queue.put((kind, params or {}, done))
        if not done["event"].wait(timeout=timeout):
            raise TimeoutError(f"task {kind!r} on {self.name!r} timed out")
        if done["error"] is not None:
            raise done["error"]
        return done["result"]

    def fail(self) -> None:
        """Mark the node dead (failure injection)."""
        self._alive.clear()

    def recover(self) -> None:
        self._alive.set()

    @property
    def alive(self) -> bool:
        return self._alive.is_set()

    @property
    def running_tasks(self) -> int:
        with self._lock:
            return self._running

    def status(self) -> NodeStatus:
        return NodeStatus(
            node=self.name,
            site=self.site,
            cpu_speed=self.cpu_speed,
            ram_total=self.ram_total,
            ram_free=self.ram_total - self.ram_used,
            disk_total=self.disk_total,
            disk_free=self.disk_total - self.disk_used,
            running_tasks=self.running_tasks,
            tasks_completed=self.tasks_completed,
            alive=self.alive,
        )

    def shutdown(self) -> None:
        self._queue.put(None)


@dataclass
class Site:
    """One administrative domain: nodes plus its proxy's name."""

    name: str
    nodes: dict[str, SiteNode] = field(default_factory=dict)
    proxy_name: str = ""
    #: site-level MPI router registry: every proxy fronting this site
    #: delivers inbound tunneled envelopes through the *site's* canonical
    #: router, so a multiplexed message arriving at a backup proxy still
    #: reaches the endpoints the ranks are actually blocked on.
    app_routers: dict = field(default_factory=dict, repr=False)
    _router_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )

    def register_app_router(self, app_id: str, router) -> None:
        """First proxy to create the app's space owns the site's router."""
        with self._router_lock:
            self.app_routers.setdefault(app_id, router)

    def app_router(self, app_id: str):
        with self._router_lock:
            return self.app_routers.get(app_id)

    def unregister_app_router(self, app_id: str, router) -> None:
        with self._router_lock:
            if self.app_routers.get(app_id) is router:
                del self.app_routers[app_id]

    def add_node(
        self,
        name: str,
        cpu_speed: float = 1.0,
        ram_total: int = 1 << 30,
        disk_total: int = 40 << 30,
        tasks: Optional[TaskRegistry] = None,
    ) -> SiteNode:
        if name in self.nodes:
            raise ValueError(f"duplicate node name: {name!r}")
        node = SiteNode(
            name,
            self.name,
            cpu_speed=cpu_speed,
            ram_total=ram_total,
            disk_total=disk_total,
            tasks=tasks,
        )
        self.nodes[name] = node
        return node

    def node_names(self) -> list[str]:
        return sorted(self.nodes)

    def alive_nodes(self) -> list[SiteNode]:
        return [node for node in self.nodes.values() if node.alive]

    def statuses(self) -> list[NodeStatus]:
        return [self.nodes[name].status() for name in self.node_names()]

    def shutdown(self) -> None:
        for node in self.nodes.values():
            node.shutdown()

"""Virtual slaves: the proxy's stand-ins for remote MPI ranks.

From the paper: "it was decided not to interfere internally in the MPI,
but to use the proxy as the entity responsible for providing the MPI with
the necessary abstraction.  This was done by creating virtual slaves in
the proxy that communicate directly with the MPI root process.  The
virtual slaves pass on the information through safe channels to the
respective destination proxy, which passes it on to the respective real
nodes … For each MPI application started in the grid, a new address space
associated to this application is created in the proxy."

:class:`AppSpace` is that per-application address space; it owns one
:class:`VirtualSlave` per rank that is *not* hosted at this proxy's site.
A virtual slave records which peer proxy fronts the real node and counts
the traffic it relays, which experiment E3/E4 report.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["AppSpace", "VirtualSlave"]


@dataclass
class VirtualSlave:
    """A local impersonation of one remote rank.

    The MPI root (or any local rank) addresses this slave exactly as it
    would a local process; the slave forwards through the secure tunnel to
    ``peer_proxy``, behind which the real node ``real_node`` executes the
    rank.  This indirection is what gives MPI "the illusion of a single
    virtual cluster".
    """

    app_id: str
    rank: int
    peer_proxy: str  # proxy name fronting the real node
    real_node: str  # node executing the rank at the remote site
    forwarded_messages: int = 0
    forwarded_bytes: int = 0

    def account(self, nbytes: int) -> None:
        self.forwarded_messages += 1
        self.forwarded_bytes += nbytes


@dataclass
class AppSpace:
    """Per-application address space inside one proxy.

    Holds the full rank → (site, node) map agreed at MPI_START plus the
    virtual slaves for every remote rank.  ``local_ranks`` are executed by
    real nodes at this proxy's site and get direct (unencrypted, LAN)
    delivery.
    """

    app_id: str
    site: str
    rank_to_site: dict[int, str] = field(default_factory=dict)
    rank_to_node: dict[int, str] = field(default_factory=dict)
    slaves: dict[int, VirtualSlave] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def size(self) -> int:
        return len(self.rank_to_site)

    @property
    def local_ranks(self) -> list[int]:
        return sorted(
            rank for rank, site in self.rank_to_site.items() if site == self.site
        )

    @property
    def remote_ranks(self) -> list[int]:
        return sorted(
            rank for rank, site in self.rank_to_site.items() if site != self.site
        )

    def populate(
        self,
        rank_to_site: dict[int, str],
        rank_to_node: dict[int, str],
        site_to_proxy: dict[str, str],
    ) -> None:
        """Install the placement map and create virtual slaves.

        One virtual slave appears for each rank hosted at another site —
        "the proxy distributes the processes throughout the grid, creating
        the virtual slaves and associating them with the real nodes."
        """
        if set(rank_to_site) != set(rank_to_node):
            raise ValueError("rank maps disagree on the rank set")
        with self._lock:
            self.rank_to_site = dict(rank_to_site)
            self.rank_to_node = dict(rank_to_node)
            self.slaves = {
                rank: VirtualSlave(
                    app_id=self.app_id,
                    rank=rank,
                    peer_proxy=site_to_proxy[site],
                    real_node=rank_to_node[rank],
                )
                for rank, site in rank_to_site.items()
                if site != self.site
            }

    def slave_for(self, rank: int) -> Optional[VirtualSlave]:
        """The virtual slave for a remote rank (None for local ranks)."""
        with self._lock:
            return self.slaves.get(rank)

    def is_local(self, rank: int) -> bool:
        try:
            return self.rank_to_site[rank] == self.site
        except KeyError:
            raise KeyError(
                f"app {self.app_id!r}: unknown rank {rank} "
                f"(world size {self.size})"
            ) from None

    def totals(self) -> tuple[int, int]:
        """(messages, bytes) forwarded through all virtual slaves."""
        with self._lock:
            messages = sum(s.forwarded_messages for s in self.slaves.values())
            nbytes = sum(s.forwarded_bytes for s in self.slaves.values())
        return messages, nbytes

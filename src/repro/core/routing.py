"""The grid directory: who is where, and which proxy fronts which site.

The paper keeps control distributed — "each proxy responsible for the
collection and control of the site where it is located" — but every proxy
must still resolve *which* peer proxy fronts a given site or node.  The
:class:`GridDirectory` is that resolution table: site → proxy, node →
site, plus the fabric addresses proxies dial to reach each other.

The directory holds only static membership (the paper's grid composition
is an administrative decision); dynamic status flows through the
monitoring layer instead.
"""

from __future__ import annotations

import threading
from typing import Optional

__all__ = ["GridDirectory", "DirectoryError"]


class DirectoryError(Exception):
    """Unknown site, node or proxy."""


class GridDirectory:
    """Thread-safe membership map shared by the grid's proxies."""

    def __init__(self):
        self._lock = threading.Lock()
        self._site_proxy: dict[str, str] = {}  # site -> proxy name
        self._proxy_address: dict[str, str] = {}  # proxy name -> dial address
        self._node_site: dict[str, str] = {}  # node -> site
        self._extra_proxies: dict[str, list[str]] = {}  # site -> additional proxies

    # -- registration -----------------------------------------------------

    def register_site(self, site: str, proxy_name: str, proxy_address: str) -> None:
        with self._lock:
            if site in self._site_proxy:
                raise DirectoryError(f"site already registered: {site!r}")
            self._site_proxy[site] = proxy_name
            self._proxy_address[proxy_name] = proxy_address
            self._extra_proxies[site] = []

    def register_extra_proxy(
        self, site: str, proxy_name: str, proxy_address: str
    ) -> None:
        """Additional proxies per site — "configurations with more than one
        proxy server per site are also accepted"."""
        with self._lock:
            if site not in self._site_proxy:
                raise DirectoryError(f"unknown site: {site!r}")
            if proxy_name in self._proxy_address:
                raise DirectoryError(f"proxy already registered: {proxy_name!r}")
            self._proxy_address[proxy_name] = proxy_address
            self._extra_proxies[site].append(proxy_name)

    def register_node(self, node: str, site: str) -> None:
        with self._lock:
            if site not in self._site_proxy:
                raise DirectoryError(f"unknown site: {site!r}")
            if node in self._node_site:
                raise DirectoryError(f"node already registered: {node!r}")
            self._node_site[node] = site

    def unregister_site(self, site: str) -> None:
        """Remove a failed/departed site and everything behind it."""
        with self._lock:
            proxy = self._site_proxy.pop(site, None)
            if proxy is None:
                raise DirectoryError(f"unknown site: {site!r}")
            self._proxy_address.pop(proxy, None)
            for extra in self._extra_proxies.pop(site, []):
                self._proxy_address.pop(extra, None)
            self._node_site = {
                node: s for node, s in self._node_site.items() if s != site
            }

    # -- resolution --------------------------------------------------------

    def sites(self) -> list[str]:
        with self._lock:
            return sorted(self._site_proxy)

    def proxies(self) -> list[str]:
        with self._lock:
            return sorted(self._proxy_address)

    def proxy_of_site(self, site: str) -> str:
        with self._lock:
            try:
                return self._site_proxy[site]
            except KeyError:
                raise DirectoryError(f"unknown site: {site!r}") from None

    def proxies_of_site(self, site: str) -> list[str]:
        """Primary proxy first, then any extras."""
        with self._lock:
            if site not in self._site_proxy:
                raise DirectoryError(f"unknown site: {site!r}")
            return [self._site_proxy[site], *self._extra_proxies[site]]

    def address_of_proxy(self, proxy_name: str) -> str:
        with self._lock:
            try:
                return self._proxy_address[proxy_name]
            except KeyError:
                raise DirectoryError(f"unknown proxy: {proxy_name!r}") from None

    def site_of_node(self, node: str) -> str:
        with self._lock:
            try:
                return self._node_site[node]
            except KeyError:
                raise DirectoryError(f"unknown node: {node!r}") from None

    def nodes_of_site(self, site: str) -> list[str]:
        with self._lock:
            return sorted(n for n, s in self._node_site.items() if s == site)

    def all_nodes(self) -> list[str]:
        with self._lock:
            return sorted(self._node_site)

    def site_to_proxy_map(self) -> dict[str, str]:
        with self._lock:
            return dict(self._site_proxy)

    def has_site(self, site: str) -> bool:
        with self._lock:
            return site in self._site_proxy

    def find_node(self, node: str) -> Optional[str]:
        """Site of node, or None — the resource-location soft query."""
        with self._lock:
            return self._node_site.get(node)

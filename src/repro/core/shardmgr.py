"""Multi-core proxy sharding: worker processes behind one proxy port.

One CPython process is one GIL: past a point, more tunnels buy no more
frames/s.  The shard layer runs ``N`` worker **processes**, each with a
full private stack — its own :class:`~repro.transport.reactor.Reactor`,
its own :class:`~repro.core.dispatch.DispatchPipeline`, its own
:class:`~repro.obs.ObsHub` registry — and splits the accept stream
between them (:mod:`repro.transport.shard` has the two mechanisms and
their tradeoffs).  Nothing is shared between workers; the paper's
local-collect observability model extends across the process boundary
unchanged: each worker collects its own registry, and the parent folds
the per-worker snapshots into one view only when asked
(``SHARD_STATS`` → :func:`~repro.obs.metrics.fold_snapshots`).

Wire-up:

* Workers are **spawned**, never forked — a forked reactor inherits
  loop threads and held locks in undefined states (gridlint GL104
  enforces this).  Spawn passes only picklable config; all sockets are
  established by the worker *connecting back* to the parent's Unix
  control listener, which doubles as the re-announce path after a
  respawn.
* Each worker sends ``HELLO {shard, pid}`` on its control link at
  startup, answers ``SHARD_STATS`` with its registry snapshot, and
  exits on ``BYE`` or when the control link drops (parent died).
* A monitor thread respawns dead workers under the same shard id; the
  replacement re-announces and (in fdpass mode) rejoins the acceptor's
  rotation.  Connections that were live inside the dead worker are
  gone — clients see the socket reset and surface
  :class:`~repro.core.proxy.PeerUnavailable`, never a hang.

``REPRO_SHARDS=N`` is the only switch: :meth:`ShardManager.from_env`
returns ``None`` when it is unset (or ``<= 1``), so the default path
stays byte-for-byte single-process.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import struct
import tempfile
import threading
import time
from typing import Any, Callable, Optional

from repro.core.protocol import ControlMessage, Op
from repro.core.proxy import PeerUnavailable, RequestTimeout
from repro.obs import ObsHub
from repro.obs.metrics import fold_snapshots
from repro.transport.channel import Channel
from repro.transport.errors import ChannelClosed, TransportError, TransportTimeout
from repro.transport.shard import ShardAcceptor, pick_mode, recv_socket
from repro.transport.tcp import TcpChannel, connect_tcp

__all__ = ["ShardClient", "ShardManager", "worker_main"]

#: environment switch: number of worker processes (unset/<=1 = no shards)
SHARDS_ENV = "REPRO_SHARDS"

_ANNOUNCE_TIMEOUT = 30.0
_MONITOR_INTERVAL = 0.25


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def worker_main(config: dict) -> None:
    """Entry point of one shard worker (spawned process).

    ``config`` is plain picklable data: ``shard`` (id), ``ctrl_path``
    (Unix socket to connect back to), ``mode`` ("reuseport"|"fdpass"),
    ``host``/``port`` (reuseport: where to bind; fdpass: informational),
    ``handoff_path`` (fdpass only), ``dispatch_workers``.
    """
    from repro.transport.reactor import Reactor, ReactorTcpChannel
    from repro.core.dispatch import DispatchPipeline

    shard_id = config["shard"]
    stop = threading.Event()
    reactor = Reactor(loops=1, name=f"shard{shard_id}")
    reactor.start()
    hub = ObsHub(f"shard-{shard_id}")
    # Instruments resolve once at worker startup and are captured by the
    # serving closures — this IS the resolve-once-and-keep-the-handle shape.
    served = hub.metrics.counter("shard.frames")  # gridlint: disable=GL301 -- worker startup, not per-message
    replies = hub.metrics.counter("shard.replies")  # gridlint: disable=GL301 -- worker startup, not per-message
    conns = hub.metrics.gauge("shard.connections")  # gridlint: disable=GL301 -- worker startup, not per-message
    pipeline = DispatchPipeline(
        name=f"shard{shard_id}",
        workers=config.get("dispatch_workers", 2),
        obs=hub,
    )

    def handle_ping(message: ControlMessage, peer: str) -> ControlMessage:
        return message.reply(Op.PONG, {"echo": message.body, "shard": shard_id})

    def handle_status(message: ControlMessage, peer: str) -> ControlMessage:
        return message.reply(
            Op.STATUS_REPORT,
            {"shard": shard_id, "pid": os.getpid(), "served": served.value},
        )

    def handle_stats(message: ControlMessage, peer: str) -> ControlMessage:
        return message.reply(
            Op.OBS_DATA,
            {"shard": shard_id, "pid": os.getpid(),
             "metrics": hub.metrics.snapshot()},
        )

    def handle_bye(message: ControlMessage, peer: str) -> None:
        stop.set()
        return None

    pipeline.register(Op.PING, handle_ping)
    pipeline.register(Op.STATUS_QUERY, handle_status)
    pipeline.register(Op.SHARD_STATS, handle_stats)
    pipeline.register(Op.BYE, handle_bye)
    pipeline.set_default(
        lambda message, peer: message.reply(
            Op.ERROR, {"error": f"shard worker: unhandled op {message.op}"}
        )
    )

    def attach(channel: Channel) -> None:
        """Serve one client connection from this worker's reactor."""
        conns.add(1)

        def on_batch(frames: list) -> None:
            served.inc(len(frames))
            messages = []
            for frame in frames:
                message = pipeline.decode(frame)
                if message is not None:
                    messages.append(message)
            if not messages:
                return

            def respond(reply: ControlMessage) -> None:
                replies.inc()
                channel.send(reply.to_frame())

            def respond_many(batch: list) -> None:
                replies.inc(len(batch))
                channel.send_many([reply.to_frame() for reply in batch])

            pipeline.dispatch_batch(
                messages, channel.name, respond, respond_many=respond_many
            )

        reactor.add_channel(
            channel,
            on_batch=on_batch,
            on_close=lambda ch, exc: conns.add(-1),
        )

    # Control link back to the parent: HELLO now, stats/BYE later, exit
    # when it drops.  Retry the connect briefly — the parent spawns us
    # before it is guaranteed to have entered accept().
    ctrl_sock = _connect_unix(config["ctrl_path"], deadline=10.0)
    ctrl = ReactorTcpChannel(ctrl_sock, reactor=reactor, name=f"shard{shard_id}-ctrl")
    reactor.add_channel(
        ctrl,
        on_frame=lambda frame: _serve_ctrl(pipeline, ctrl, frame, shard_id),
        on_close=lambda ch, exc: stop.set(),
    )
    ctrl.send(
        ControlMessage(
            op=Op.HELLO,
            body={"shard": shard_id, "pid": os.getpid(), "mode": config["mode"]},
            sender=f"shard-{shard_id}",
        ).to_frame()
    )

    threads = []
    if config["mode"] == "reuseport":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        listener.bind((config["host"], config["port"]))
        listener.listen(128)

        def accept_loop() -> None:
            while not stop.is_set():
                try:
                    conn, peer = listener.accept()
                except OSError:
                    return
                attach(ReactorTcpChannel(
                    conn, reactor=reactor,
                    name=f"shard{shard_id}:{peer[0]}:{peer[1]}",
                ))

        threads.append(threading.Thread(  # gridlint: disable=GL102 -- blocking accept() cannot run on a reactor loop
            target=accept_loop, daemon=True, name=f"shard{shard_id}-accept"
        ))
    else:
        handoff = _connect_unix(config["handoff_path"], deadline=10.0)
        handoff.sendall(struct.pack("!I", shard_id))
        listener = None

        def handoff_loop() -> None:
            while not stop.is_set():
                try:
                    conn = recv_socket(handoff)
                except OSError:
                    break
                if conn is None:
                    break
                attach(ReactorTcpChannel(
                    conn, reactor=reactor, name=f"shard{shard_id}-fd{conn.fileno()}",
                ))
            stop.set()

        threads.append(threading.Thread(  # gridlint: disable=GL102 -- blocking recv_fds() cannot run on a reactor loop
            target=handoff_loop, daemon=True, name=f"shard{shard_id}-handoff"
        ))

    for thread in threads:
        thread.start()
    try:
        stop.wait()
    finally:
        if listener is not None:
            listener.close()
        pipeline.close()
        reactor.stop()


def _serve_ctrl(pipeline, ctrl, frame, shard_id: int) -> None:
    message = pipeline.decode(frame)
    if message is None:
        return
    pipeline.dispatch(
        message, "parent", lambda reply: ctrl.send(reply.to_frame())
    )


def _connect_unix(path: str, deadline: float) -> socket.socket:
    """Connect to a parent Unix socket, retrying until ``deadline``."""
    end = time.monotonic() + deadline
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
            return sock
        except OSError:
            sock.close()
            if time.monotonic() >= end:
                raise
            time.sleep(0.05)


# ---------------------------------------------------------------------------
# Parent
# ---------------------------------------------------------------------------


class _CtrlLink:
    """Parent's end of one worker control channel (threaded, low-rate)."""

    def __init__(self, shard_id: int, pid: int, channel: Channel):
        self.shard_id = shard_id
        self.pid = pid
        self.channel = channel
        self.lock = threading.Lock()

    def request(self, message: ControlMessage, timeout: float) -> ControlMessage:
        """One in-flight request at a time; replies match by id."""
        with self.lock:
            self.channel.send(message.to_frame())
            deadline = time.monotonic() + timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportTimeout(
                        f"shard {self.shard_id}: control request timed out"
                    )
                frame = self.channel.recv(timeout=remaining)
                reply = ControlMessage.from_frame(frame)
                if reply.reply_to == message.message_id:
                    return reply
                # Stale traffic (late reply to an abandoned request): skip.


class ShardManager:
    """Spawns, monitors, and fronts ``N`` shard worker processes.

    ``mode=None`` picks ``reuseport`` where the kernel supports it, else
    ``fdpass``.  :meth:`start` blocks until every worker has announced;
    :meth:`stats` gathers live per-worker registry snapshots;
    :meth:`folded_snapshot` is the one-grid-view fold the proxy's
    ``OBS_DUMP`` path serves.
    """

    def __init__(
        self,
        shards: int,
        host: str = "127.0.0.1",
        port: int = 0,
        mode: Optional[str] = None,
        dispatch_workers: int = 2,
        name: str = "shards",
    ):
        if shards < 1:
            raise ValueError(f"need at least one shard: {shards}")
        self.shards = shards
        self.host = host
        self.mode = pick_mode(mode)
        self.name = name
        self.dispatch_workers = dispatch_workers
        self.port = port
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: dict[int, Any] = {}
        self._links: dict[int, _CtrlLink] = {}
        self._announced: dict[int, threading.Event] = {}
        self._lock = threading.Lock()
        self._closing = threading.Event()
        self._dir: Optional[tempfile.TemporaryDirectory] = None
        self._ctrl_listener: Optional[socket.socket] = None
        self._reserve_sock: Optional[socket.socket] = None
        self._handoff_listener: Optional[socket.socket] = None
        self._acceptor: Optional[ShardAcceptor] = None
        self._threads: list[threading.Thread] = []
        #: respawn count per shard id (tests and OBS_DUMP read this)
        self.respawns: dict[int, int] = {}
        #: hook fired as ``fn(shard_id, pid)`` on every announce
        self.on_announce: list[Callable[[int, int], None]] = []

    @classmethod
    def from_env(cls, host: str = "127.0.0.1", port: int = 0, **kwargs):
        """Build from ``REPRO_SHARDS``; ``None`` when sharding is off.

        Anything unset, unparsable, or ``<= 1`` means "no shard layer" —
        the single-process proxy path must stay untouched by default.
        """
        raw = os.environ.get(SHARDS_ENV, "").strip()
        try:
            n = int(raw)
        except ValueError:
            return None
        if n <= 1:
            return None
        return cls(shards=n, host=host, port=port, **kwargs)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ShardManager":
        if self._dir is not None:
            return self
        self._dir = tempfile.TemporaryDirectory(prefix="repro-shard-")
        ctrl_path = os.path.join(self._dir.name, "ctrl.sock")
        self._ctrl_listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._ctrl_listener.bind(ctrl_path)
        self._ctrl_listener.listen(self.shards * 2)
        handoff_path = None

        if self.mode == "reuseport":
            # Reserve the port: bound with SO_REUSEPORT but *not*
            # listening, so the kernel never routes a SYN here while the
            # port stays taken across worker restarts.
            self._reserve_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._reserve_sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
            self._reserve_sock.bind((self.host, self.port))
            self.port = self._reserve_sock.getsockname()[1]
        else:
            handoff_path = os.path.join(self._dir.name, "handoff.sock")
            self._handoff_listener = socket.socket(
                socket.AF_UNIX, socket.SOCK_STREAM
            )
            self._handoff_listener.bind(handoff_path)
            self._handoff_listener.listen(self.shards * 2)
            listen_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listen_sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listen_sock.bind((self.host, self.port))
            listen_sock.listen(256)
            self.port = listen_sock.getsockname()[1]
            self._acceptor = ShardAcceptor(
                listen_sock, name=f"{self.name}-acceptor"
            ).start()

        self._worker_config = {
            "mode": self.mode,
            "host": self.host,
            "port": self.port,
            "ctrl_path": ctrl_path,
            "handoff_path": handoff_path,
            "dispatch_workers": self.dispatch_workers,
        }
        service = [(self._ctrl_accept_loop, "ctrl-accept"),
                   (self._monitor_loop, "monitor")]
        if self.mode == "fdpass":
            service.append((self._handoff_accept_loop, "handoff-accept"))
        for thread_fn, thread_name in service:
            thread = threading.Thread(  # gridlint: disable=GL102 -- process supervision: blocking accept/waitpid loops, not frame work
                target=thread_fn, daemon=True, name=f"{self.name}-{thread_name}"
            )
            thread.start()
            self._threads.append(thread)

        for shard_id in range(self.shards):
            self._spawn(shard_id)
        deadline = time.monotonic() + _ANNOUNCE_TIMEOUT
        for shard_id in range(self.shards):
            if not self._wait_announce(shard_id, deadline - time.monotonic()):
                self.stop()
                raise RuntimeError(
                    f"shard worker {shard_id} failed to announce within "
                    f"{_ANNOUNCE_TIMEOUT}s"
                )
        return self

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def _spawn(self, shard_id: int) -> None:
        config = dict(self._worker_config, shard=shard_id)
        with self._lock:
            self._announced[shard_id] = threading.Event()
        proc = self._ctx.Process(
            target=worker_main,
            args=(config,),
            daemon=True,
            name=f"{self.name}-worker-{shard_id}",
        )
        proc.start()
        with self._lock:
            self._procs[shard_id] = proc

    def _wait_announce(self, shard_id: int, timeout: float) -> bool:
        with self._lock:
            event = self._announced.get(shard_id)
        return event is not None and event.wait(timeout=max(0.0, timeout))

    # -- parent-side service threads -------------------------------------

    def _ctrl_accept_loop(self) -> None:
        """Accept worker control links; the first frame must be HELLO."""
        while not self._closing.is_set():
            try:
                conn, _ = self._ctrl_listener.accept()
            except OSError:
                return
            channel = TcpChannel(conn, name=f"{self.name}-ctrl")
            try:
                hello = ControlMessage.from_frame(channel.recv(timeout=10.0))
            except Exception:
                channel.close()
                continue
            if hello.op != Op.HELLO or "shard" not in hello.body:
                channel.close()
                continue
            shard_id = hello.body["shard"]
            pid = hello.body.get("pid", 0)
            link = _CtrlLink(shard_id, pid, channel)
            with self._lock:
                old = self._links.get(shard_id)
                self._links[shard_id] = link
                event = self._announced.get(shard_id)
            if old is not None:
                old.channel.close()
            if event is not None:
                event.set()
            for hook in list(self.on_announce):
                try:
                    hook(shard_id, pid)
                except Exception:
                    pass

    def _handoff_accept_loop(self) -> None:
        """Accept worker handoff links (fdpass); header names the shard."""
        while not self._closing.is_set():
            try:
                conn, _ = self._handoff_listener.accept()
            except OSError:
                return
            try:
                header = _recv_exact(conn, 4)
            except OSError:
                conn.close()
                continue
            if header is None:
                conn.close()
                continue
            (shard_id,) = struct.unpack("!I", header)
            self._acceptor.add_worker(shard_id, conn)

    def _monitor_loop(self) -> None:
        """Respawn dead workers under the same shard id."""
        while not self._closing.is_set():
            with self._lock:
                procs = dict(self._procs)
            for shard_id, proc in procs.items():
                if proc.is_alive() or self._closing.is_set():
                    continue
                proc.join(timeout=0)
                if self._acceptor is not None:
                    self._acceptor.remove_worker(shard_id)
                with self._lock:
                    dead_link = self._links.pop(shard_id, None)
                if dead_link is not None:
                    dead_link.channel.close()
                self.respawns[shard_id] = self.respawns.get(shard_id, 0) + 1
                self._spawn(shard_id)
            self._closing.wait(_MONITOR_INTERVAL)

    # -- the control plane -----------------------------------------------

    def live_links(self) -> list[_CtrlLink]:
        with self._lock:
            return [
                link for link in self._links.values()
                if not link.channel.closed
            ]

    def stats(self, timeout: float = 10.0) -> list[dict]:
        """Per-worker ``{"shard", "pid", "metrics"}`` from live workers."""
        out = []
        for link in self.live_links():
            message = ControlMessage(
                op=Op.SHARD_STATS, body={}, sender=self.name
            )
            try:
                reply = link.request(message, timeout=timeout)
            except TransportError:
                continue  # worker died mid-request; monitor will respawn
            if reply.op == Op.OBS_DATA:
                out.append(reply.body)
        return sorted(out, key=lambda body: body.get("shard", 0))

    def folded_snapshot(self, timeout: float = 10.0) -> dict:
        """One grid-view registry: every worker's snapshot, folded."""
        per_worker = self.stats(timeout=timeout)
        folded = fold_snapshots([body["metrics"] for body in per_worker])
        folded["workers"] = [
            {"shard": body.get("shard"), "pid": body.get("pid")}
            for body in per_worker
        ]
        folded["respawns"] = dict(self.respawns)
        folded["mode"] = self.mode
        return folded

    def kill_worker(self, shard_id: int) -> int:
        """Hard-kill one worker (chaos/testing); returns the old pid."""
        with self._lock:
            proc = self._procs.get(shard_id)
        if proc is None or proc.pid is None:
            raise ValueError(f"no such shard: {shard_id}")
        pid = proc.pid
        proc.terminate()
        return pid

    def stop(self) -> None:
        if self._closing.is_set():
            return
        self._closing.set()
        for link in self.live_links():
            try:
                link.channel.send(
                    ControlMessage(op=Op.BYE, body={}, sender=self.name).to_frame()
                )
            except TransportError:
                pass
        with self._lock:
            procs = dict(self._procs)
            links = dict(self._links)
            self._links = {}
        for proc in procs.values():
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=2.0)
        for link in links.values():
            link.channel.close()
        if self._acceptor is not None:
            self._acceptor.close()
        for sock in (self._ctrl_listener, self._handoff_listener,
                     self._reserve_sock):
            if sock is not None:
                sock.close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        if self._dir is not None:
            self._dir.cleanup()
            self._dir = None

    def __enter__(self) -> "ShardManager":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _recv_exact(conn: socket.socket, n: int) -> Optional[bytes]:
    buf = b""
    while len(buf) < n:
        chunk = conn.recv(n - len(buf))
        if not chunk:
            return None
        buf += chunk
    return buf


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------


class ShardClient:
    """A client connection to the sharded frontend.

    Thin request/reply wrapper that turns transport failures into the
    proxy layer's verdicts: a dropped connection (worker crashed, no
    workers left) raises :class:`~repro.core.proxy.PeerUnavailable`, a
    blown deadline raises :class:`~repro.core.proxy.RequestTimeout` —
    an in-flight request on a dead worker must *surface*, not hang.
    """

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self.timeout = timeout
        try:
            self._channel = connect_tcp(host, port, timeout=timeout)
        except OSError as exc:
            raise PeerUnavailable(f"shard frontend unreachable: {exc}") from exc

    def request(
        self,
        op: int,
        body: Optional[dict] = None,
        timeout: Optional[float] = None,
    ) -> ControlMessage:
        timeout = self.timeout if timeout is None else timeout
        message = ControlMessage(op=op, body=body or {}, sender="shard-client")
        deadline = time.monotonic() + timeout
        try:
            self._channel.send(message.to_frame())
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise RequestTimeout(
                        f"no reply to {Op.name_of(op)} within {timeout}s"
                    )
                reply = ControlMessage.from_frame(
                    self._channel.recv(timeout=remaining)
                )
                if reply.reply_to == message.message_id:
                    return reply
        except ChannelClosed as exc:
            raise PeerUnavailable(f"shard worker gone: {exc}") from exc
        except TransportTimeout as exc:
            raise RequestTimeout(str(exc)) from exc

    def close(self) -> None:
        self._channel.close()

    def __enter__(self) -> "ShardClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

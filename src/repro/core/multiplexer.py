"""The MPI multiplexer: local delivery vs proxy forwarding.

"To support the MPI applications and allow them to be executed in the
entire grid, the proxy acts as a multiplexer of the communication between
the root process and its respective slaves. … This mapping done by the
proxy is transparent for the application and can be seen as a
multiplexion of the communication between the source and the
destination."

:class:`GridRouter` realises that: it implements the same
:class:`~repro.mpi.router.Router` interface as the plain
:class:`~repro.mpi.router.LocalRouter`, so MPI applications cannot tell
the difference (the paper's transparency).  Envelopes between ranks at
the same site are delivered directly over the "LAN" in cleartext
(Fig. 3a); envelopes to remote ranks are serialised, accounted against
the rank's virtual slave, and forwarded through the proxy's secure
tunnel to the destination proxy (Fig. 3b).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.core.virtual_slave import AppSpace
from repro.mpi.datatypes import Envelope
from repro.mpi.router import Endpoint, Router, RouterError
from repro.transport.frames import decode_value, encode_value

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.proxy import ProxyServer

__all__ = ["GridRouter"]


class GridRouter(Router):
    """Per-site, per-application router backed by the site's proxy."""

    def __init__(self, proxy: "ProxyServer", space: AppSpace):
        self.proxy = proxy
        self.space = space
        self._endpoints: dict[int, Endpoint] = {
            rank: Endpoint(rank) for rank in space.local_ranks
        }
        self._lock = threading.Lock()
        #: traffic that stayed on the site LAN (messages, bytes)
        self.local_messages = 0

    # -- Router interface -----------------------------------------------------

    def send(self, envelope: Envelope) -> None:
        if self.space.is_local(envelope.dest):
            # Fig. 3a: direct local delivery, no encryption, no proxy hop.
            with self._lock:
                self.local_messages += 1
            self._endpoints[envelope.dest].deliver(envelope)
            return
        # Fig. 3b: hand the envelope to the virtual slave's forwarding path.
        slave = self.space.slave_for(envelope.dest)
        if slave is None:
            raise RouterError(
                f"app {self.space.app_id!r}: no virtual slave for rank "
                f"{envelope.dest}"
            )
        payload_blob = encode_value(envelope.payload)
        slave.account(len(payload_blob))
        self.proxy.forward_mpi(
            app_id=self.space.app_id,
            peer_proxy=slave.peer_proxy,
            source=envelope.source,
            dest=envelope.dest,
            tag=envelope.tag,
            payload_blob=payload_blob,
        )

    def endpoint(self, rank: int) -> Endpoint:
        try:
            return self._endpoints[rank]
        except KeyError:
            raise RouterError(
                f"rank {rank} is not hosted at site {self.space.site!r}"
            ) from None

    # -- inbound from the tunnel ------------------------------------------------

    def deliver_remote(
        self, source: int, dest: int, tag: int, payload_blob: bytes
    ) -> None:
        """Deliver a tunneled envelope to a local rank (called by the proxy)."""
        endpoint = self._endpoints.get(dest)
        if endpoint is None:
            raise RouterError(
                f"app {self.space.app_id!r}: rank {dest} not local to "
                f"{self.space.site!r}"
            )
        envelope = Envelope(
            source=source, dest=dest, tag=tag, payload=decode_value(payload_blob)
        )
        endpoint.deliver(envelope)

    def close(self) -> None:
        for endpoint in self._endpoints.values():
            endpoint.close()

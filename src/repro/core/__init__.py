"""The paper's contribution: the proxy-server grid architecture.

Each *site* (a LAN or cluster) places a :class:`~repro.core.proxy.ProxyServer`
at its border.  Proxies interconnect the sites, authenticate each other with
CA-issued certificates, tunnel all inter-site traffic over a secure channel,
collect their own site's status, validate user permissions at both the
originating and destination ends, and multiplex MPI applications through
*virtual slaves* so unmodified MPI code runs on the whole grid as if it were
one cluster.

Modules
-------
:mod:`repro.core.protocol`
    The expandable inter-proxy control protocol (op-codes, requests,
    replies).
:mod:`repro.core.tunnel`
    Secure inter-site tunnels: handshake + record encryption between
    proxy pairs; local traffic stays in cleartext by design.
:mod:`repro.core.virtual_slave`
    Virtual slaves: per-application stand-ins for remote MPI ranks.
:mod:`repro.core.multiplexer`
    The MPI router that delivers locally and forwards remotely through
    the proxy (Fig. 3a vs 3b).
:mod:`repro.core.proxy`
    The proxy server itself (layers 1–4 tied together).
:mod:`repro.core.site`
    A site: named nodes behind one or more proxies.
:mod:`repro.core.grid`
    The top-level Grid object users interact with.
:mod:`repro.core.routing`
    The grid directory: which site hosts which node/rank, proxy peering.
"""

from repro.core.grid import Grid, GridError
from repro.core.protocol import ControlMessage, Op, ProtocolError
from repro.core.proxy import ProxyServer
from repro.core.site import Site, SiteNode
from repro.core.tunnel import Tunnel, TunnelError
from repro.core.virtual_slave import AppSpace, VirtualSlave

__all__ = [
    "AppSpace",
    "ControlMessage",
    "Grid",
    "GridError",
    "Op",
    "ProtocolError",
    "ProxyServer",
    "Site",
    "SiteNode",
    "Tunnel",
    "TunnelError",
    "VirtualSlave",
]

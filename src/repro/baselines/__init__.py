"""Baseline architectures the paper's design is compared against.

The paper's overhead and failure arguments (§3) are comparative: proxy
edge-tunneling versus "the traditional approaches [where] the security
falls within the MPI application [and] all the cluster's nodes reflect
the overhead", and distributed per-site control versus a centralised
information service.  This package implements those comparators:

* :mod:`repro.baselines.pernode` — per-node security (Globus-style GSI
  in every process): cost models for crypto work and message latency
  under both architectures, used by experiment E4;
* :mod:`repro.baselines.central` — a centralised monitor/controller:
  control-traffic model and single-point-of-failure availability,
  used by experiments E5 and E7.
"""

from repro.baselines.central import CentralizedMonitor, availability_after_failure
from repro.baselines.pernode import (
    ArchitectureCosts,
    CryptoCostModel,
    TrafficSpec,
    evaluate_pernode,
    evaluate_proxy,
)

__all__ = [
    "ArchitectureCosts",
    "CentralizedMonitor",
    "CryptoCostModel",
    "TrafficSpec",
    "availability_after_failure",
    "evaluate_pernode",
    "evaluate_proxy",
]

"""Centralised monitoring/control baseline for experiments E5 and E7.

The counterpart to the paper's distributed design: one collector polls
every node in the grid directly, and one controller owns all control
state.  Two consequences the experiments measure:

* **control traffic** — a refresh costs one query per *node* instead of
  one per *site*, and a single-site question still pays for the world;
* **availability** — the controller is a single point of failure: when
  it dies the whole grid is uncontrollable, whereas the distributed
  design loses only the failed site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["CentralizedMonitor", "FailureImpact", "availability_after_failure"]


class CentralizedMonitor:
    """One collector polling every node directly.

    Mirrors :class:`~repro.control.monitor.GlobalStatusCompiler`'s
    counters so E5 compares like with like, but ``fetch_node`` hits each
    station individually — there is no per-site aggregation point.
    """

    def __init__(
        self,
        nodes_by_site: dict[str, list[str]],
        fetch_node: Callable[[str], dict[str, Any]],
        clock: Callable[[], float],
        ttl: float = 30.0,
    ):
        self.nodes_by_site = {s: list(ns) for s, ns in nodes_by_site.items()}
        self.fetch_node = fetch_node
        self.clock = clock
        self.ttl = ttl
        self._cache: dict[str, tuple[float, dict[str, Any]]] = {}
        self.queries_sent = 0
        self.entries_transferred = 0

    def _node_status(self, node: str) -> dict[str, Any]:
        now = self.clock()
        cached = self._cache.get(node)
        if cached is not None and now - cached[0] <= self.ttl:
            return cached[1]
        entry = self.fetch_node(node)
        self.queries_sent += 1
        self.entries_transferred += 1
        self._cache[node] = (now, entry)
        return entry

    def site_status(self, site: str) -> list[dict[str, Any]]:
        """Even one site's answer polls each of its nodes individually."""
        try:
            nodes = self.nodes_by_site[site]
        except KeyError:
            raise KeyError(f"unknown site: {site!r}") from None
        return [self._node_status(node) for node in nodes]

    def global_status(self) -> dict[str, list[dict[str, Any]]]:
        return {site: self.site_status(site) for site in self.nodes_by_site}


@dataclass(frozen=True)
class FailureImpact:
    """Fraction of grid capacity lost when a component fails."""

    architecture: str
    failed_component: str
    capacity_remaining: float  # 0..1
    controllable: bool  # can the surviving grid still be managed?


def availability_after_failure(
    sites: dict[str, int],
    failed: str,
    architecture: str,
) -> FailureImpact:
    """Capacity surviving a failure under each control architecture.

    ``sites`` maps site name → node count.  ``failed`` is a site name or
    ``"controller"`` (the central control machine).  Under the
    distributed architecture losing a site removes exactly that site;
    there is no "controller" to lose (each proxy controls its own site).
    Under the centralised architecture losing the controller leaves the
    capacity running but *uncontrollable* — no new work can be placed,
    which the experiment scores as 0 usable capacity.
    """
    if architecture not in ("distributed", "centralized"):
        raise ValueError(f"unknown architecture: {architecture!r}")
    total = sum(sites.values())
    if total == 0:
        raise ValueError("grid has no nodes")

    if failed == "controller":
        if architecture == "distributed":
            # No such component: per-site proxies are the controllers.
            return FailureImpact(architecture, failed, 1.0, True)
        return FailureImpact(architecture, failed, 0.0, False)

    if failed not in sites:
        raise KeyError(f"unknown site: {failed!r}")
    remaining = (total - sites[failed]) / total
    if architecture == "centralized":
        # The controller survives; it just lost one site's nodes.
        return FailureImpact(architecture, failed, remaining, True)
    return FailureImpact(architecture, failed, remaining, True)

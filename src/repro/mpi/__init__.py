"""minimpi — a from-scratch MPI-like message-passing library.

The paper's layer 4 supports *unmodified* MPI applications across the
grid; reproducing that requires an MPI whose applications we can run both
on a single "cluster" and through the proxy's virtual-slave multiplexer
with zero source changes.  minimpi provides the MPI core that matters for
the paper's claims:

* communicators with ranks and sizes (:mod:`repro.mpi.communicator`);
* blocking/non-blocking point-to-point with tags and wildcard matching;
* the standard collectives, built algorithmically on point-to-point
  (:mod:`repro.mpi.collectives`);
* an ``mpirun``-style launcher that places ranks round-robin over nodes —
  the paper notes "in its original form, the MPI uses the round-robin
  method to distribute the processes among the nodes"
  (:mod:`repro.mpi.launcher`).

Ranks run as Python threads.  All communication goes through a
:class:`~repro.mpi.router.Router`, the seam where the proxy interposes:
a local router delivers directly (Fig. 3a); the proxy's multiplexer
substitutes virtual-slave routing for inter-site ranks (Fig. 3b) without
the application noticing.
"""

from repro.mpi.communicator import (
    ANY_SOURCE,
    ANY_TAG,
    Communicator,
    MpiError,
    Request,
    Status,
)
from repro.mpi.datatypes import MAX, MIN, PROD, SUM, ReduceOp
from repro.mpi.launcher import MpiJobResult, mpirun
from repro.mpi.router import Endpoint, LocalRouter, Router

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Endpoint",
    "LocalRouter",
    "MAX",
    "MIN",
    "MpiError",
    "MpiJobResult",
    "PROD",
    "ReduceOp",
    "Request",
    "Router",
    "SUM",
    "Status",
    "mpirun",
]

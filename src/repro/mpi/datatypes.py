"""Message envelopes and reduction operations for minimpi."""

from __future__ import annotations

import itertools
import operator
from dataclasses import dataclass, field
from functools import reduce as _functools_reduce
from typing import Any, Callable

from repro.transport.frames import encode_value

__all__ = [
    "BAND",
    "BOR",
    "Envelope",
    "LAND",
    "LOR",
    "MAX",
    "MIN",
    "PROD",
    "ReduceOp",
    "SUM",
]

_envelope_ids = itertools.count(1)


@dataclass
class Envelope:
    """One point-to-point message in flight."""

    source: int
    dest: int
    tag: int
    payload: Any
    envelope_id: int = field(default_factory=lambda: next(_envelope_ids))

    def wire_size(self) -> int:
        """Bytes the payload occupies when serialised for a channel.

        Used by the proxy and benchmarks for traffic accounting; local
        delivery never serialises.
        """
        return len(encode_value(self.payload))


class ReduceOp:
    """A named, associative reduction operation."""

    def __init__(self, name: str, fn: Callable[[Any, Any], Any]):
        self.name = name
        self.fn = fn

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def reduce_all(self, values: list) -> Any:
        if not values:
            raise ValueError(f"reduce {self.name} over empty sequence")
        return _functools_reduce(self.fn, values)

    def __repr__(self) -> str:
        return f"ReduceOp({self.name})"


SUM = ReduceOp("sum", operator.add)
PROD = ReduceOp("prod", operator.mul)
MAX = ReduceOp("max", max)
MIN = ReduceOp("min", min)
LAND = ReduceOp("land", lambda a, b: bool(a) and bool(b))
LOR = ReduceOp("lor", lambda a, b: bool(a) or bool(b))
BAND = ReduceOp("band", operator.and_)
BOR = ReduceOp("bor", operator.or_)

"""The application-facing MPI communicator.

Provides the familiar surface: ``rank``/``size``, blocking ``send``/
``recv`` with tags and wildcards, non-blocking ``isend``/``irecv`` with
:class:`Request`, ``probe``, ``sendrecv``, and the collectives (delegated
to :mod:`repro.mpi.collectives`).

A user tag is any non-negative int; the collective algorithms use an
internal negative tag space derived from a per-communicator operation
counter, so user traffic can never be confused with collective traffic
(all ranks execute collectives in the same program order, which is what
MPI itself requires).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Optional

from repro.mpi import collectives as _collectives
from repro.mpi.datatypes import Envelope, ReduceOp
from repro.mpi.router import Router

__all__ = ["ANY_SOURCE", "ANY_TAG", "Communicator", "MpiError", "Request", "Status"]

ANY_SOURCE = -1
ANY_TAG = -1

#: Collective tags live at COLLECTIVE_TAG_BASE - op_index; always negative.
_COLLECTIVE_TAG_BASE = -1000


class MpiError(Exception):
    """Invalid rank, tag, or communicator misuse."""


@dataclass(frozen=True)
class Status:
    """Metadata about a received message (MPI_Status)."""

    source: int
    tag: int
    envelope_id: int


class Request:
    """Handle for a non-blocking operation; ``wait`` returns its value."""

    def __init__(self):
        self._done = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    def _complete(self, value: Any = None, error: Optional[BaseException] = None) -> None:
        self._value = value
        self._error = error
        self._done.set()

    def test(self) -> bool:
        """True once the operation has completed."""
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        if not self._done.wait(timeout=timeout):
            raise TimeoutError("request not complete within timeout")
        if self._error is not None:
            raise self._error
        return self._value


class Communicator:
    """One rank's view of the MPI world."""

    def __init__(self, rank: int, size: int, router: Router):
        if not 0 <= rank < size:
            raise MpiError(f"rank {rank} outside world of {size}")
        self.rank = rank
        self.size = size
        self._router = router
        self._endpoint = router.endpoint(rank)
        self._collective_op = 0
        self.bytes_sent = 0
        self.messages_sent = 0

    # -- point-to-point ------------------------------------------------------

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Blocking standard-mode send (buffered: never deadlocks here)."""
        self._check_peer(dest)
        self._check_tag(tag)
        self._post(payload, dest, tag)

    def _post(self, payload: Any, dest: int, tag: int) -> None:
        envelope = Envelope(source=self.rank, dest=dest, tag=tag, payload=payload)
        self._router.send(envelope)
        self.messages_sent += 1
        self.bytes_sent += envelope.wire_size()

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
        with_status: bool = False,
    ) -> Any:
        """Blocking receive; returns the payload (or (payload, Status))."""
        if source != ANY_SOURCE:
            self._check_peer(source)
        if tag != ANY_TAG:
            self._check_tag(tag)
        envelope = self._endpoint.match(source, tag, timeout=timeout)
        if with_status:
            status = Status(
                source=envelope.source, tag=envelope.tag, envelope_id=envelope.envelope_id
            )
            return envelope.payload, status
        return envelope.payload

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (delivery is immediate in this implementation,
        so the request completes synchronously; the API matches MPI)."""
        request = Request()
        try:
            self.send(payload, dest, tag)
        except BaseException as exc:
            request._complete(error=exc)
        else:
            request._complete()
        return request

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive, completed by message arrival.

        No helper thread: the request is parked on the endpoint and the
        delivering thread (a local sender or the reactor loop carrying
        tunnel traffic) completes it.  ``wait`` blocks as before, and —
        matching the original thread-based contract — an invalid source
        or tag surfaces from ``wait``, never from ``irecv`` itself.
        """
        request = Request()
        try:
            if source != ANY_SOURCE:
                self._check_peer(source)
            if tag != ANY_TAG:
                self._check_tag(tag)
        except MpiError as exc:
            request._complete(error=exc)
            return request

        def on_match(envelope, error) -> None:
            if error is not None:
                request._complete(error=error)
            else:
                request._complete(value=envelope.payload)

        self._endpoint.match_async(source, tag, on_match)
        return request

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Non-blocking probe; Status of the first matching pending message."""
        envelope = self._endpoint.peek(source, tag)
        if envelope is None:
            return None
        return Status(
            source=envelope.source, tag=envelope.tag, envelope_id=envelope.envelope_id
        )

    def sendrecv(
        self,
        payload: Any,
        dest: int,
        source: int = ANY_SOURCE,
        send_tag: int = 0,
        recv_tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> Any:
        """Combined send+receive, safe against pairwise exchange deadlock."""
        self.send(payload, dest, tag=send_tag)
        return self.recv(source=source, tag=recv_tag, timeout=timeout)

    # -- collectives -----------------------------------------------------------

    def _next_collective_tag(self) -> int:
        tag = _COLLECTIVE_TAG_BASE - self._collective_op
        self._collective_op += 1
        return tag

    def _collective_send(self, payload: Any, dest: int, tag: int) -> None:
        """Internal send bypassing user-tag validation."""
        self._check_peer(dest)
        self._post(payload, dest, tag)

    def _collective_recv(self, source: int, tag: int, timeout: Optional[float]) -> Any:
        envelope = self._endpoint.match(source, tag, timeout=timeout)
        return envelope.payload

    def barrier(self, timeout: Optional[float] = None) -> None:
        _collectives.barrier(self, timeout=timeout)

    def bcast(self, payload: Any = None, root: int = 0, timeout: Optional[float] = None) -> Any:
        return _collectives.bcast(self, payload, root=root, timeout=timeout)

    def reduce(
        self, value: Any, op: ReduceOp, root: int = 0, timeout: Optional[float] = None
    ) -> Optional[Any]:
        return _collectives.reduce(self, value, op, root=root, timeout=timeout)

    def allreduce(self, value: Any, op: ReduceOp, timeout: Optional[float] = None) -> Any:
        return _collectives.allreduce(self, value, op, timeout=timeout)

    def gather(
        self, value: Any, root: int = 0, timeout: Optional[float] = None
    ) -> Optional[list]:
        return _collectives.gather(self, value, root=root, timeout=timeout)

    def allgather(self, value: Any, timeout: Optional[float] = None) -> list:
        return _collectives.allgather(self, value, timeout=timeout)

    def scatter(
        self, values: Optional[list] = None, root: int = 0, timeout: Optional[float] = None
    ) -> Any:
        return _collectives.scatter(self, values, root=root, timeout=timeout)

    def alltoall(self, values: list, timeout: Optional[float] = None) -> list:
        return _collectives.alltoall(self, values, timeout=timeout)

    def scan(self, value: Any, op: ReduceOp, timeout: Optional[float] = None) -> Any:
        return _collectives.scan(self, value, op, timeout=timeout)

    # -- validation ----------------------------------------------------------------

    def _check_peer(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise MpiError(f"peer rank {rank} outside world of {self.size}")

    def _check_tag(self, tag: int) -> None:
        if tag < 0:
            raise MpiError(f"user tags must be non-negative: {tag}")

    def __repr__(self) -> str:
        return f"Communicator(rank={self.rank}, size={self.size})"

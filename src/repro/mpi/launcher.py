"""mpirun: launch an MPI application across ranks.

Runs each rank's function on its own thread over a shared router.  The
default router is :class:`~repro.mpi.router.LocalRouter` (one cluster);
the grid layer passes a proxy-multiplexed router instead, and — exactly
as the paper requires — the application function does not change.

Placement mirrors the paper's observation that "in its original form, the
MPI uses the round-robin method to distribute the processes among the
nodes": :func:`round_robin_placement` is the default; the grid scheduler
offers the load-balanced alternative.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.mpi.communicator import Communicator
from repro.mpi.router import LocalRouter, Router

__all__ = ["MpiJobResult", "mpirun", "round_robin_placement"]


def round_robin_placement(nprocs: int, hosts: Sequence[str]) -> list[str]:
    """rank → host, cycling through hosts in order (MPI's native policy)."""
    if not hosts:
        raise ValueError("no hosts to place on")
    return [hosts[i % len(hosts)] for i in range(nprocs)]


@dataclass
class MpiJobResult:
    """Outcome of one mpirun invocation."""

    returns: list[Any]
    errors: dict[int, BaseException] = field(default_factory=dict)
    placement: Optional[list[str]] = None

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_first(self) -> None:
        """Re-raise the lowest-rank failure, if any."""
        if self.errors:
            rank = min(self.errors)
            raise self.errors[rank]


def mpirun(
    app: Callable[[Communicator], Any],
    nprocs: int,
    router: Optional[Router] = None,
    hosts: Optional[Sequence[str]] = None,
    timeout: Optional[float] = 120.0,
    args: tuple = (),
) -> MpiJobResult:
    """Run ``app(comm, *args)`` on ``nprocs`` ranks; join and collect.

    A rank that raises records its exception in the result rather than
    killing the process — the paper's reliability argument (§3) depends on
    application failures staying inside the application.
    """
    if nprocs <= 0:
        raise ValueError(f"nprocs must be positive: {nprocs}")
    own_router = router is None
    if router is None:
        router = LocalRouter(nprocs)
    placement = None
    if hosts is not None:
        placement = round_robin_placement(nprocs, hosts)

    returns: list[Any] = [None] * nprocs
    errors: dict[int, BaseException] = {}
    errors_lock = threading.Lock()

    def run_rank(rank: int) -> None:
        comm = Communicator(rank, nprocs, router)
        try:
            returns[rank] = app(comm, *args)
        except BaseException as exc:  # deliberately broad: report, don't die
            with errors_lock:
                errors[rank] = exc

    threads = [
        threading.Thread(  # gridlint: disable=GL102 -- MPI rank bodies are blocking user code; one thread per rank, joined below
            target=run_rank, args=(rank,), name=f"mpi-rank-{rank}"
        )
        for rank in range(nprocs)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
    hung = [t for t in threads if t.is_alive()]
    if hung:
        # Unblock receivers stuck on dead peers, then report.
        if isinstance(router, LocalRouter):
            router.close()
        for thread in hung:
            thread.join(timeout=1.0)
        raise TimeoutError(
            f"{len(hung)} rank(s) did not finish within {timeout}s "
            f"(deadlock or lost message?)"
        )
    if own_router and isinstance(router, LocalRouter):
        router.close()
    return MpiJobResult(returns=returns, errors=errors, placement=placement)

"""Message routing between MPI ranks — the proxy's interposition seam.

A :class:`Router` moves :class:`~repro.mpi.datatypes.Envelope` objects
between rank endpoints.  The application-visible API
(:class:`~repro.mpi.communicator.Communicator`) only ever talks to a
router, so swapping :class:`LocalRouter` (direct mailbox delivery — the
paper's Fig. 3a) for the proxy's multiplexing router (Fig. 3b) is
invisible to MPI code.  That is precisely the paper's transparency claim,
and experiment E3 measures the difference between the two.
"""

from __future__ import annotations

import abc
import threading
import time
from typing import Callable, Optional

from repro.mpi.datatypes import Envelope

__all__ = ["Endpoint", "LocalRouter", "Router", "RouterError"]


class RouterError(Exception):
    """Unknown destination rank or delivery to a finished job."""


class Endpoint:
    """A rank's mailbox: thread-safe, with (source, tag) matching.

    MPI receive semantics: messages from the same source arrive in send
    order; ``match`` returns the *first* pending message satisfying the
    (source, tag) pattern, where -1 acts as a wildcard on either field.
    """

    def __init__(self, rank: int):
        self.rank = rank
        self._pending: list[Envelope] = []
        self._lock = threading.Lock()
        self._arrival = threading.Condition(self._lock)
        #: async receivers: (source, tag, callback) in registration order
        self._waiters: list[tuple[int, int, Callable]] = []
        self._closed = False

    def deliver(self, envelope: Envelope) -> None:
        callback = None
        with self._arrival:
            if self._closed:
                raise RouterError(f"endpoint {self.rank} is closed")
            # Async receivers take precedence: the first registered
            # waiter whose (source, tag) pattern matches consumes the
            # envelope directly, without it ever entering the mailbox.
            for index, (source, tag, cb) in enumerate(self._waiters):
                if source in (-1, envelope.source) and tag in (-1, envelope.tag):
                    callback = cb
                    del self._waiters[index]
                    break
            else:
                self._pending.append(envelope)
                self._arrival.notify_all()
        if callback is not None:
            callback(envelope, None)

    def close(self) -> None:
        with self._arrival:
            self._closed = True
            waiters, self._waiters = self._waiters, []
            self._arrival.notify_all()
        error = RouterError(f"endpoint {self.rank} closed while receiving")
        for _, _, callback in waiters:
            callback(None, error)

    def _find(self, source: int, tag: int) -> Optional[int]:
        for index, envelope in enumerate(self._pending):
            if source not in (-1, envelope.source):
                continue
            if tag not in (-1, envelope.tag):
                continue
            return index
        return None

    def match(
        self, source: int, tag: int, timeout: Optional[float] = None
    ) -> Envelope:
        """Block until a matching message arrives, then remove and return it."""
        with self._arrival:
            remaining = timeout
            start = time.monotonic()
            while True:
                index = self._find(source, tag)
                if index is not None:
                    return self._pending.pop(index)
                if self._closed:
                    raise RouterError(f"endpoint {self.rank} closed while receiving")
                if timeout is not None:
                    remaining = timeout - (time.monotonic() - start)
                    if remaining <= 0:
                        raise TimeoutError(
                            f"rank {self.rank}: no message from source={source} "
                            f"tag={tag} within {timeout}s"
                        )
                self._arrival.wait(timeout=remaining)

    def match_async(
        self, source: int, tag: int, callback: Callable
    ) -> None:
        """Event-driven receive: ``callback(envelope, error)`` fires once.

        If a matching message is already pending it is consumed and the
        callback runs immediately on the caller's thread; otherwise the
        waiter is parked and :meth:`deliver` completes it on the
        deliverer's thread (the reactor loop, for tunnel traffic).  This
        is what lets ``irecv`` cost a list entry instead of a thread.
        """
        with self._arrival:
            if not self._closed:
                index = self._find(source, tag)
                if index is not None:
                    envelope = self._pending.pop(index)
                    error = None
                else:
                    self._waiters.append((source, tag, callback))
                    return
            else:
                envelope = None
                error = RouterError(f"endpoint {self.rank} closed while receiving")
        callback(envelope, error)

    def peek(self, source: int, tag: int) -> Optional[Envelope]:
        """Non-destructive probe for a matching message."""
        with self._lock:
            index = self._find(source, tag)
            return self._pending[index] if index is not None else None

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)


class Router(abc.ABC):
    """Moves envelopes between ranks."""

    @abc.abstractmethod
    def send(self, envelope: Envelope) -> None:
        """Deliver (or forward) one envelope toward its destination rank."""

    @abc.abstractmethod
    def endpoint(self, rank: int) -> Endpoint:
        """The local mailbox for a rank hosted by this router."""


class LocalRouter(Router):
    """Direct delivery inside one process — a single cluster's MPI fabric.

    An optional ``on_send`` hook observes every envelope (benchmarks count
    traffic with it) without perturbing delivery.
    """

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"world size must be positive: {size}")
        self.size = size
        self._endpoints = [Endpoint(rank) for rank in range(size)]
        self.on_send: Optional[Callable[[Envelope], None]] = None

    def send(self, envelope: Envelope) -> None:
        if not 0 <= envelope.dest < self.size:
            raise RouterError(
                f"destination rank {envelope.dest} outside world of {self.size}"
            )
        if self.on_send is not None:
            self.on_send(envelope)
        self._endpoints[envelope.dest].deliver(envelope)

    def endpoint(self, rank: int) -> Endpoint:
        if not 0 <= rank < self.size:
            raise RouterError(f"rank {rank} outside world of {self.size}")
        return self._endpoints[rank]

    def close(self) -> None:
        for endpoint in self._endpoints:
            endpoint.close()

"""Message routing between MPI ranks — the proxy's interposition seam.

A :class:`Router` moves :class:`~repro.mpi.datatypes.Envelope` objects
between rank endpoints.  The application-visible API
(:class:`~repro.mpi.communicator.Communicator`) only ever talks to a
router, so swapping :class:`LocalRouter` (direct mailbox delivery — the
paper's Fig. 3a) for the proxy's multiplexing router (Fig. 3b) is
invisible to MPI code.  That is precisely the paper's transparency claim,
and experiment E3 measures the difference between the two.
"""

from __future__ import annotations

import abc
import threading
import time
from typing import Callable, Optional

from repro.mpi.datatypes import Envelope

__all__ = ["Endpoint", "LocalRouter", "Router", "RouterError"]


class RouterError(Exception):
    """Unknown destination rank or delivery to a finished job."""


class Endpoint:
    """A rank's mailbox: thread-safe, with (source, tag) matching.

    MPI receive semantics: messages from the same source arrive in send
    order; ``match`` returns the *first* pending message satisfying the
    (source, tag) pattern, where -1 acts as a wildcard on either field.
    """

    def __init__(self, rank: int):
        self.rank = rank
        self._pending: list[Envelope] = []
        self._lock = threading.Lock()
        self._arrival = threading.Condition(self._lock)
        self._closed = False

    def deliver(self, envelope: Envelope) -> None:
        with self._arrival:
            if self._closed:
                raise RouterError(f"endpoint {self.rank} is closed")
            self._pending.append(envelope)
            self._arrival.notify_all()

    def close(self) -> None:
        with self._arrival:
            self._closed = True
            self._arrival.notify_all()

    def _find(self, source: int, tag: int) -> Optional[int]:
        for index, envelope in enumerate(self._pending):
            if source not in (-1, envelope.source):
                continue
            if tag not in (-1, envelope.tag):
                continue
            return index
        return None

    def match(
        self, source: int, tag: int, timeout: Optional[float] = None
    ) -> Envelope:
        """Block until a matching message arrives, then remove and return it."""
        with self._arrival:
            remaining = timeout
            start = time.monotonic()
            while True:
                index = self._find(source, tag)
                if index is not None:
                    return self._pending.pop(index)
                if self._closed:
                    raise RouterError(f"endpoint {self.rank} closed while receiving")
                if timeout is not None:
                    remaining = timeout - (time.monotonic() - start)
                    if remaining <= 0:
                        raise TimeoutError(
                            f"rank {self.rank}: no message from source={source} "
                            f"tag={tag} within {timeout}s"
                        )
                self._arrival.wait(timeout=remaining)

    def peek(self, source: int, tag: int) -> Optional[Envelope]:
        """Non-destructive probe for a matching message."""
        with self._lock:
            index = self._find(source, tag)
            return self._pending[index] if index is not None else None

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)


class Router(abc.ABC):
    """Moves envelopes between ranks."""

    @abc.abstractmethod
    def send(self, envelope: Envelope) -> None:
        """Deliver (or forward) one envelope toward its destination rank."""

    @abc.abstractmethod
    def endpoint(self, rank: int) -> Endpoint:
        """The local mailbox for a rank hosted by this router."""


class LocalRouter(Router):
    """Direct delivery inside one process — a single cluster's MPI fabric.

    An optional ``on_send`` hook observes every envelope (benchmarks count
    traffic with it) without perturbing delivery.
    """

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"world size must be positive: {size}")
        self.size = size
        self._endpoints = [Endpoint(rank) for rank in range(size)]
        self.on_send: Optional[Callable[[Envelope], None]] = None

    def send(self, envelope: Envelope) -> None:
        if not 0 <= envelope.dest < self.size:
            raise RouterError(
                f"destination rank {envelope.dest} outside world of {self.size}"
            )
        if self.on_send is not None:
            self.on_send(envelope)
        self._endpoints[envelope.dest].deliver(envelope)

    def endpoint(self, rank: int) -> Endpoint:
        if not 0 <= rank < self.size:
            raise RouterError(f"rank {rank} outside world of {self.size}")
        return self._endpoints[rank]

    def close(self) -> None:
        for endpoint in self._endpoints:
            endpoint.close()

"""Collective operations built on point-to-point messaging.

Algorithms are the textbook tree/dissemination forms so message counts
scale as they do in real MPI implementations (O(log n) rounds for
barrier/bcast/reduce), which matters when the proxy benchmark counts
inter-site traffic:

* ``barrier``     — dissemination barrier, ceil(log2 n) rounds;
* ``bcast``       — binomial tree from the root;
* ``reduce``      — binomial tree toward the root;
* ``allreduce``   — reduce + bcast;
* ``gather``      — direct to root (payload sizes differ per rank);
* ``allgather``   — gather + bcast;
* ``scatter``     — direct from root;
* ``alltoall``    — pairwise exchange, n-1 rounds;
* ``scan``        — inclusive prefix, linear chain.

Every collective draws one internal tag per invocation from the
communicator's operation counter, so concurrent user traffic and earlier
collectives can never be matched by mistake.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.mpi.datatypes import ReduceOp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mpi.communicator import Communicator

__all__ = [
    "allgather",
    "allreduce",
    "alltoall",
    "barrier",
    "bcast",
    "gather",
    "reduce",
    "scan",
    "scatter",
]


def barrier(comm: "Communicator", timeout: Optional[float] = None) -> None:
    """Dissemination barrier: round k exchanges with rank ± 2^k."""
    tag = comm._next_collective_tag()
    n = comm.size
    if n == 1:
        return
    distance = 1
    while distance < n:
        dest = (comm.rank + distance) % n
        source = (comm.rank - distance) % n
        comm._collective_send(None, dest, tag)
        comm._collective_recv(source, tag, timeout)
        distance *= 2


def bcast(
    comm: "Communicator", payload: Any, root: int = 0, timeout: Optional[float] = None
) -> Any:
    """Binomial-tree broadcast from ``root``; returns the payload everywhere."""
    comm._check_peer(root)
    tag = comm._next_collective_tag()
    n = comm.size
    if n == 1:
        return payload
    # Work in a rotated space where the root is rank 0 (classic binomial
    # tree: receive on the lowest set bit, forward on all lower bits).
    vrank = (comm.rank - root) % n
    mask = 1
    while mask < n:
        if vrank & mask:
            parent = ((vrank - mask) + root) % n
            payload = comm._collective_recv(parent, tag, timeout)
            break
        mask *= 2
    mask //= 2
    while mask > 0:
        if vrank + mask < n:
            child = (vrank + mask + root) % n
            comm._collective_send(payload, child, tag)
        mask //= 2
    return payload


def reduce(
    comm: "Communicator",
    value: Any,
    op: ReduceOp,
    root: int = 0,
    timeout: Optional[float] = None,
) -> Optional[Any]:
    """Binomial-tree reduction toward ``root``.

    Returns the reduced value at the root and None elsewhere.  MPI
    requires the combination to happen in canonical rank order (so
    non-commutative-but-associative ops match the sequential left-fold
    over ranks 0..n-1); rotating the tree to an arbitrary root would
    break that, so the tree is always rooted at rank 0 — whose subtrees
    cover contiguous rank ranges — and the result takes one extra hop to
    a non-zero root.
    """
    comm._check_peer(root)
    tag = comm._next_collective_tag()
    n = comm.size
    if n == 1:
        return value
    rank = comm.rank
    accumulated = value
    mask = 1
    while mask < n:
        if rank & mask:
            parent = rank & ~mask
            comm._collective_send(accumulated, parent, tag)
            break
        child = rank | mask
        if child < n:
            child_value = comm._collective_recv(child, tag, timeout)
            # The child's subtree covers strictly higher ranks, so folding
            # on the right preserves rank order for associative ops.
            accumulated = op(accumulated, child_value)
        mask *= 2
    if root != 0:
        if rank == 0:
            comm._collective_send(accumulated, root, tag)
        elif rank == root:
            return comm._collective_recv(0, tag, timeout)
        return None
    return accumulated if rank == 0 else None


def allreduce(
    comm: "Communicator", value: Any, op: ReduceOp, timeout: Optional[float] = None
) -> Any:
    result = reduce(comm, value, op, root=0, timeout=timeout)
    return bcast(comm, result, root=0, timeout=timeout)


def gather(
    comm: "Communicator", value: Any, root: int = 0, timeout: Optional[float] = None
) -> Optional[list]:
    """Gather one value per rank into a rank-ordered list at the root."""
    comm._check_peer(root)
    tag = comm._next_collective_tag()
    if comm.rank == root:
        values: list = [None] * comm.size
        values[root] = value
        for _ in range(comm.size - 1):
            sender, payload = comm._collective_recv(-1, tag, timeout)
            values[sender] = payload
        return values
    comm._collective_send((comm.rank, value), root, tag)
    return None


def allgather(comm: "Communicator", value: Any, timeout: Optional[float] = None) -> list:
    values = gather(comm, value, root=0, timeout=timeout)
    return bcast(comm, values, root=0, timeout=timeout)


def scatter(
    comm: "Communicator",
    values: Optional[list],
    root: int = 0,
    timeout: Optional[float] = None,
) -> Any:
    """Distribute values[i] to rank i from the root."""
    from repro.mpi.communicator import MpiError

    comm._check_peer(root)
    tag = comm._next_collective_tag()
    if comm.rank == root:
        if values is None or len(values) != comm.size:
            raise MpiError(
                f"scatter at root needs exactly {comm.size} values, "
                f"got {None if values is None else len(values)}"
            )
        for dest in range(comm.size):
            if dest != root:
                comm._collective_send(values[dest], dest, tag)
        return values[root]
    return comm._collective_recv(root, tag, timeout)


def alltoall(comm: "Communicator", values: list, timeout: Optional[float] = None) -> list:
    """Each rank sends values[i] to rank i; returns what every rank sent us."""
    from repro.mpi.communicator import MpiError

    if len(values) != comm.size:
        raise MpiError(
            f"alltoall needs exactly {comm.size} values, got {len(values)}"
        )
    tag = comm._next_collective_tag()
    result: list = [None] * comm.size
    result[comm.rank] = values[comm.rank]
    # Pairwise exchange: in round r, exchange with rank ^ r when valid, else
    # use a linear schedule for non-power-of-two sizes.
    for offset in range(1, comm.size):
        dest = (comm.rank + offset) % comm.size
        source = (comm.rank - offset) % comm.size
        comm._collective_send(values[dest], dest, tag)
        result[source] = comm._collective_recv(source, tag, timeout)
    return result


def scan(
    comm: "Communicator", value: Any, op: ReduceOp, timeout: Optional[float] = None
) -> Any:
    """Inclusive prefix reduction: rank k gets op over ranks 0..k."""
    tag = comm._next_collective_tag()
    accumulated = value
    if comm.rank > 0:
        prefix = comm._collective_recv(comm.rank - 1, tag, timeout)
        accumulated = op(prefix, value)
    if comm.rank + 1 < comm.size:
        comm._collective_send(accumulated, comm.rank + 1, tag)
    return accumulated

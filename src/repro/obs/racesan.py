"""Eraser-style lockset data-race sanitizer for the test suite.

:mod:`repro.obs.lockwatch` answers "are locks taken in a consistent
*order*?"; this module answers the complementary question nothing else
covers: "is shared state touched *with a lock at all*?"  A field mutated
from a reactor callback and a pool worker with no common lock is
invisible to the lock-order watchdog (no locks, no edges) and to
gridlint's lexical rules (the access is dynamic) — it is exactly the bug
class the proxy's shared caches grow as the stack gets more concurrent.

Model (Eraser's lockset refinement, plus an ownership-transfer state
machine tuned to this codebase):

* Classes marked ``@shared_state`` (and objects passed to
  :func:`watch`) get their attribute reads and writes instrumented.
  Each sampled access records ``(thread, is_write, candidate lockset,
  reactor-ownership token)`` — the lockset comes from the per-thread
  held stacks :class:`~repro.obs.lockwatch.LockOrderWatchdog` already
  maintains, and the ownership token from
  :func:`repro.transport.reactor.current_owner` (a reactor loop thread
  counts as holding a pseudo-lock named after its loop: accesses
  serialized by loop ownership are synchronized without any mutex).
* Per ``(object, field)`` state machine::

      VIRGIN --first access--> EXCLUSIVE(owner)
      EXCLUSIVE --new thread--> TRANSFERRING(new owner, C=its locks)
      TRANSFERRING --another new thread--> TRANSFERRING(handoff again)
      TRANSFERRING --prior owner returns--> SHARED / SHARED_MOD
      SHARED(+_MOD): C ∩= locks held at each access

  ``EXCLUSIVE`` makes init-then-publish free (the constructor holds no
  locks and needs none); ``TRANSFERRING`` makes single-owner handoff
  (shard/channel ownership moving between threads) free: the lockset
  only starts refining once two threads *interleave* on the field.  A
  prior accessor whose thread has exited no longer counts as sharing —
  handing state to a new thread after ``join()`` is a transfer, not a
  race.
* An empty candidate lockset on a field that has seen at least one
  write while shared is a **race**: both access stacks are reported,
  and the pytest session fails with exit code 4.

Suppression contract mirrors gridlint's pragma: a report whose access
site (either side) carries ::

    self._hits += 1  # racesan: ok -- <why this is benign>

is counted but not raised.  The justification after ``--`` is required;
a bare ``# racesan: ok`` suppresses nothing.

``REPRO_RACESAN=0`` disables the sanitizer entirely (classes stay
un-instrumented); ``REPRO_RACESAN=1`` records everywhere; the default
(``auto``) instruments but only records where the suite opts in (the
chaos and integration suites do, via autouse fixtures).
``REPRO_RACESAN_SAMPLE=N`` records every Nth read on hot fields (writes
and state transitions are never sampled out).  Production code never
pays: without :func:`install`, ``@shared_state`` is a pure marker.
"""

from __future__ import annotations

import linecache
import os
import re
import sys
import threading
from contextlib import contextmanager
from types import FrameType
from typing import Any, Callable, Iterator, Optional, TypeVar

from repro.obs import lockwatch

__all__ = [
    "RaceError",
    "RaceReport",
    "RaceSanitizer",
    "active",
    "install",
    "mode",
    "scoped",
    "set_owner_resolver",
    "set_recording",
    "shared_state",
    "transfer",
    "uninstall",
    "watch",
]

_T = TypeVar("_T")

#: ``# racesan: ok -- reason`` — the justification is mandatory, like
#: gridlint's ``disable=`` pragma: the point is reasoning in the code.
_SUPPRESS_RE = re.compile(r"#\s*racesan:\s*ok\s*--\s*\S")
_BARE_SUPPRESS_RE = re.compile(r"#\s*racesan:\s*ok\s*(?:$|[^-])")

#: Field states (ints: compared hot, never printed on the fast path).
_VIRGIN, _EXCLUSIVE, _TRANSFERRING, _SHARED, _SHARED_MOD, _RACED = range(6)

_STATE_NAMES = {
    _VIRGIN: "virgin",
    _EXCLUSIVE: "exclusive",
    _TRANSFERRING: "transferring",
    _SHARED: "shared",
    _SHARED_MOD: "shared-modified",
    _RACED: "raced",
}


class RaceError(AssertionError):
    """Raised by :meth:`RaceSanitizer.assert_clean` on recorded races."""


#: One captured stack frame: (filename, lineno, function).  Raw tuples
#: on the hot path; formatting happens only when a report renders.
_Site = tuple[str, int, str]


def _site_stack(skip: int = 2, depth: int = 5) -> tuple[_Site, ...]:
    """Raw ``(file, line, function)`` stack of the instrumented access."""
    frame: Optional[FrameType]
    try:
        frame = sys._getframe(skip)
    except ValueError:  # pragma: no cover - interpreter shutdown
        return ()
    sites: list[_Site] = []
    while frame is not None and len(sites) < depth:
        code = frame.f_code
        filename = code.co_filename
        # Skip this module's own instrumentation frames and threading
        # internals (exact paths: a *test* named test_racesan.py must
        # still appear in stacks — suppressions anchor on it).
        if filename != __file__ and not filename.endswith("threading.py"):
            sites.append((filename, frame.f_lineno, code.co_name))
        frame = frame.f_back
    return tuple(sites)


def _format_site(site: _Site) -> str:
    filename, lineno, func = site
    return f"{filename}:{lineno} ({func})"


def _site_suppressed(site: _Site) -> Optional[bool]:
    """True if the access line carries a justified ``# racesan: ok``.

    Returns ``None`` for a bare (unjustified) pragma so the report can
    call it out — an unexplained suppression must not silence anything.
    """
    path, lineno, _ = site
    line = linecache.getline(path, lineno)
    if _SUPPRESS_RE.search(line):
        return True
    if _BARE_SUPPRESS_RE.search(line):
        return None
    return False


class _Access:
    """One sampled access, kept for the two-stack race report."""

    __slots__ = ("thread_name", "ident", "is_write", "locks", "owner", "sites")

    def __init__(
        self,
        thread_name: str,
        ident: int,
        is_write: bool,
        locks: tuple[int, ...],
        owner: Optional[str],
        sites: tuple[_Site, ...],
    ) -> None:
        self.thread_name = thread_name
        self.ident = ident
        self.is_write = is_write
        self.locks = locks
        self.owner = owner
        self.sites = sites

    def describe(self) -> str:
        locks = [f"lock#{serial}" for serial in self.locks]
        if self.owner is not None:
            locks.append(self.owner)
        held = ", ".join(locks) if locks else "none"
        kind = "write" if self.is_write else "read"
        stack = (
            "\n      ".join(_format_site(site) for site in self.sites)
            if self.sites
            else "<no stack>"
        )
        return (
            f"{kind} on thread {self.thread_name!r} holding [{held}]\n"
            f"      {stack}"
        )


class _FieldState:
    """Lockset-refinement state for one ``(object, field)`` pair."""

    __slots__ = (
        "phase",
        "owner_ident",
        "prior_owners",
        "lockset",
        "last_write",
        "last_read",
    )

    def __init__(self) -> None:
        self.phase = _VIRGIN
        self.owner_ident = 0
        self.prior_owners: set[int] = set()
        self.lockset: Optional[frozenset] = None
        self.last_write: Optional[_Access] = None
        self.last_read: Optional[_Access] = None


class RaceReport:
    """One detected race: the conflicting access pair, rendered lazily."""

    def __init__(
        self, cls: str, field: str, current: _Access, other: Optional[_Access]
    ) -> None:
        self.cls = cls
        self.field = field
        self.current = current
        self.other = other
        self.suppressed = False
        self.unjustified_pragma = False

    @property
    def key(self) -> tuple[str, str]:
        return (self.cls, self.field)

    def render(self) -> str:
        lines = [
            f"data race on {self.cls}.{self.field}: no common lock "
            "between the accesses below (>=1 write)",
            f"    {self.current.describe()}",
        ]
        if self.other is not None:
            lines.append(f"    {self.other.describe()}")
        if self.unjustified_pragma:
            lines.append(
                "    (a bare `# racesan: ok` was found; add `-- <reason>` "
                "to make it count)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        def access(a: Optional[_Access]) -> Optional[dict[str, Any]]:
            if a is None:
                return None
            return {
                "thread": a.thread_name,
                "write": a.is_write,
                "locks": list(a.locks),
                "owner": a.owner,
                "stack": [_format_site(site) for site in a.sites],
            }

        return {
            "class": self.cls,
            "field": self.field,
            "suppressed": self.suppressed,
            "current": access(self.current),
            "other": access(self.other),
        }


class RaceSanitizer:
    """Process-wide lockset race detector over instrumented objects.

    Accesses arrive via the instrumented ``__setattr__`` /
    ``__getattribute__`` of ``@shared_state`` classes; the state machine
    runs under one private (unwatched) mutex.  ``recording`` gates the
    whole pipeline so suites opt in per test without re-instrumenting.
    """

    def __init__(self, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1: {sample_every}")
        self.sample_every = sample_every
        self._recording = False
        # The bookkeeping mutex must be unwatched: racesan's own lock in
        # every candidate lockset would make all locksets intersect.
        self._mutex = lockwatch.raw_lock()
        self._states: dict[tuple[int, str, str], _FieldState] = {}
        self._reported: set[tuple[str, str]] = set()
        self._tick = 0
        self.accesses_sampled = 0
        self.objects_reset = 0
        self.races: list[RaceReport] = []
        self.suppressions_hit: list[RaceReport] = []

    @property
    def recording(self) -> bool:
        return self._recording

    @recording.setter
    def recording(self, flag: bool) -> None:
        # Recording gates more than the pipeline: the read-path
        # instrumentation (a wrapper on every attribute *lookup* of a
        # shared class) is only patched in while some sanitizer records,
        # so idle sessions pay a write-path check and nothing else.
        self._recording = bool(flag)
        _sync_read_patch()

    # -- access pipeline -------------------------------------------------

    def note(self, obj: Any, field: str, is_write: bool) -> None:
        """Record one attribute access (called from instrumentation)."""
        if not is_write:
            # Reads sample; writes and everything that can change the
            # state machine's verdict always land.
            self._tick += 1
            if self._tick % self.sample_every:
                return
        watchdog = lockwatch.active()
        held: tuple[int, ...] = ()
        if watchdog is not None:
            raw = getattr(watchdog._tls, "held", None)
            if raw:
                held = tuple(dict.fromkeys(raw))
        owner = _owner_resolver() if _owner_resolver is not None else None
        access = _Access(
            thread_name=threading.current_thread().name,
            ident=threading.get_ident(),
            is_write=is_write,
            locks=held,
            owner=owner,
            sites=(),
        )
        candidate: frozenset = frozenset(held if owner is None else (*held, owner))
        cls = type(obj)
        cls_name = _qualname_cache.get(cls)
        if cls_name is None:
            cls_name = _qualname_cache[cls] = cls.__qualname__
        key = (id(obj), cls_name, field)
        with self._mutex:
            self.accesses_sampled += 1
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = _FieldState()
            # Stacks are for reports; capture them only where a report
            # could still involve this access (writes, and any access
            # once the field is genuinely shared) — exclusive/handoff
            # reads, the overwhelming hot path, skip the frame walk.
            if is_write or state.phase >= _SHARED:
                access.sites = _site_stack(skip=3)
            self._step(cls_name, field, state, access, candidate)

    def _step(
        self,
        cls: str,
        field: str,
        state: _FieldState,
        access: _Access,
        candidate: frozenset,
    ) -> None:
        ident = access.ident
        phase = state.phase
        if phase == _RACED:
            return
        if phase == _VIRGIN:
            state.phase = _EXCLUSIVE
            state.owner_ident = ident
        elif ident == state.owner_ident:
            if phase == _TRANSFERRING:
                assert state.lockset is not None
                state.lockset &= candidate
            elif phase in (_SHARED, _SHARED_MOD):
                self._refine(cls, field, state, access, candidate)
                self._remember(state, access)
                return
        elif phase in (_EXCLUSIVE, _TRANSFERRING):
            prior = set(state.prior_owners)
            prior.add(state.owner_ident)
            live = _live_idents()
            returning = ident in prior
            others_alive = any(p in live for p in prior if p != ident)
            if not others_alive:
                # Every previous accessor's thread has exited (or this
                # field only ever moved forward to fresh threads): a
                # handoff, not sharing.  The new owner starts a fresh
                # candidate lockset.
                state.prior_owners = {p for p in prior if p in live}
                state.prior_owners.discard(ident)
                state.owner_ident = ident
                state.phase = _TRANSFERRING
                state.lockset = frozenset(candidate)
            elif returning:
                # A previous owner interleaves with the current one:
                # genuine sharing begins; refine from here on.  Writes
                # from the exclusive epochs do NOT count (init-then-
                # publish is free) — only this and later accesses do.
                state.phase = _SHARED_MOD if access.is_write else _SHARED
                base = state.lockset if state.lockset is not None else candidate
                state.lockset = base & candidate
                self._check(cls, field, state, access)
            else:
                # A brand-new thread while prior owners are still alive:
                # single-owner handoff chain continues (pools hand work
                # forward), but remember everyone — if any of them comes
                # back we treat the field as shared.
                state.prior_owners = prior
                state.owner_ident = ident
                state.phase = _TRANSFERRING
                state.lockset = frozenset(candidate)
        else:  # SHARED / SHARED_MOD, different thread
            self._refine(cls, field, state, access, candidate)
            self._remember(state, access)
            return
        self._remember(state, access)

    def _refine(
        self,
        cls: str,
        field: str,
        state: _FieldState,
        access: _Access,
        candidate: frozenset,
    ) -> None:
        assert state.lockset is not None
        state.lockset &= candidate
        if access.is_write and state.phase == _SHARED:
            state.phase = _SHARED_MOD
        self._check(cls, field, state, access)

    def _remember(self, state: _FieldState, access: _Access) -> None:
        if access.is_write:
            state.last_write = access
        else:
            state.last_read = access

    def _check(
        self, cls: str, field: str, state: _FieldState, access: _Access
    ) -> None:
        if state.phase != _SHARED_MOD or state.lockset:
            return
        state.phase = _RACED
        if (cls, field) in self._reported:
            return
        self._reported.add((cls, field))
        if access.is_write:
            other = state.last_write or state.last_read
        else:
            other = state.last_write
        if other is not None and other.ident == access.ident:
            # Prefer the cross-thread side of the pair for the report.
            alt = state.last_read if other is state.last_write else state.last_write
            if alt is not None and alt.ident != access.ident:
                other = alt
        report = RaceReport(cls, field, access, other)
        verdicts = [
            _site_suppressed(sites[0])
            for sites in (access.sites, other.sites if other else ())
            if sites
        ]
        if any(verdicts):
            report.suppressed = True
            self.suppressions_hit.append(report)
        else:
            report.unjustified_pragma = any(v is None for v in verdicts)
            self.races.append(report)

    # -- object lifecycle ------------------------------------------------

    def reset_object(self, obj: Any) -> None:
        """Forget all field state for ``obj`` (constructor / id reuse)."""
        marker = (id(obj), type(obj).__qualname__)
        with self._mutex:
            self.objects_reset += 1
            stale = [key for key in self._states if key[:2] == marker]
            for key in stale:
                del self._states[key]

    def transfer(self, obj: Any) -> None:
        """Declare an ownership transfer: the next thread to touch each
        field of ``obj`` becomes its new exclusive owner (shard handoff,
        queue hand-over — anywhere the old owner provably stops)."""
        marker = (id(obj), type(obj).__qualname__)
        with self._mutex:
            for key, state in self._states.items():
                if key[:2] == marker and state.phase != _RACED:
                    self._states[key] = _FieldState()

    # -- reporting -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The ``observability()`` section: wire- and JSON-safe dicts."""
        with self._mutex:
            tracked = len({key[:2] for key in self._states})
            return {
                "enabled": True,
                "recording": self.recording,
                "sample_every": self.sample_every,
                "watched_classes": sorted(_instrumented_names()),
                "objects_tracked": tracked,
                "accesses_sampled": self.accesses_sampled,
                "races": [report.to_dict() for report in self.races],
                "suppressions_hit": len(self.suppressions_hit),
            }

    def assert_clean(self) -> None:
        if self.races:
            raise RaceError(
                f"{len(self.races)} data race(s):\n"
                + "\n".join(f"  {report.render()}" for report in self.races)
            )


def _live_idents() -> set:
    return {
        thread.ident
        for thread in threading.enumerate()
        if thread.ident is not None
    }


# ---------------------------------------------------------------------------
# Class instrumentation
# ---------------------------------------------------------------------------

_active: Optional[RaceSanitizer] = None
_installed = False
#: Classes registered by @shared_state, in registration order.
_registered: list[type] = []
#: Classes actually instrumented (subset of registered + watch() targets).
#: cls -> (orig_setattr, orig_getattribute, orig_init, read_wrapper).
_instrumented: dict[type, tuple] = {}
#: True while __getattribute__ wrappers are patched in (recording only).
_reads_patched = False
#: type -> __qualname__, so the hot path skips the descriptor lookups.
_qualname_cache: dict[type, str] = {}
#: Every attribute name ever *written* through an instrumented
#: ``__setattr__`` — the read path only reports names in this set, so
#: method lookups pay one set-membership test and nothing else.
_tracked_fields: set[str] = set()
#: Resolves the calling thread to a reactor-ownership token (or None).
#: Registered by repro.transport.reactor at import time.
_owner_resolver: Optional[Callable[[], Optional[str]]] = None


def set_owner_resolver(resolver: Optional[Callable[[], Optional[str]]]) -> None:
    """Register the reactor-ownership hook (``current_owner``)."""
    global _owner_resolver
    _owner_resolver = resolver


def _instrumented_names() -> list[str]:
    return [cls.__qualname__ for cls in _instrumented]


def shared_state(cls: type[_T]) -> type[_T]:
    """Mark a class as cross-thread shared state.

    Without :func:`install` this is a pure marker (zero runtime cost);
    under an installed sanitizer the class's attribute accesses are
    instrumented.  gridlint's GL106/GL107 read the same decorator
    statically — the runtime and static checkers share one model of
    "who may touch what".
    """
    cls.__racesan_shared__ = True  # type: ignore[attr-defined]
    _registered.append(cls)
    if _installed:
        _instrument_class(cls)
    return cls


def watch(obj: _T) -> _T:
    """Instrument one object's class and track the object from scratch.

    For shared objects whose class cannot carry the decorator (third
    party, dynamically created).  Instrumentation is per *class* —
    CPython attribute access cannot be hooked per instance — so other
    instances of the same class become watched too; ``reset_object``
    keeps their histories separate.
    """
    cls = type(obj)
    if not getattr(cls, "__racesan_shared__", False):
        cls.__racesan_shared__ = True  # type: ignore[attr-defined]
        _registered.append(cls)
    if _installed:
        _instrument_class(cls)
    if _active is not None:
        _active.reset_object(obj)
    return obj


def transfer(obj: Any) -> None:
    """Module-level convenience for :meth:`RaceSanitizer.transfer`."""
    if _active is not None:
        _active.transfer(obj)


def _instrument_class(cls: type) -> None:
    if cls in _instrumented:
        return
    orig_setattr = cls.__setattr__
    orig_getattribute = cls.__getattribute__
    orig_init = cls.__init__

    def racesan_setattr(self: Any, name: str, value: Any) -> None:
        san = _active
        if san is not None and san._recording:
            _tracked_fields.add(name)
            san.note(self, name, True)
        orig_setattr(self, name, value)

    def racesan_getattribute(self: Any, name: str) -> Any:
        if name in _tracked_fields:
            san = _active
            if san is not None and san._recording:
                san.note(self, name, False)
        return orig_getattribute(self, name)

    def racesan_init(self: Any, *args: Any, **kwargs: Any) -> None:
        # Object ids recycle; a fresh constructor run at a dead object's
        # id must not inherit its ownership history.
        san = _active
        if san is not None:
            san.reset_object(self)
        orig_init(self, *args, **kwargs)

    _instrumented[cls] = (
        orig_setattr,
        orig_getattribute,
        orig_init,
        racesan_getattribute,
    )
    cls.__setattr__ = racesan_setattr  # type: ignore[method-assign, assignment]
    cls.__init__ = racesan_init  # type: ignore[misc]
    if _reads_patched:
        cls.__getattribute__ = racesan_getattribute  # type: ignore[method-assign, assignment]


def _sync_read_patch() -> None:
    """Patch/unpatch ``__getattribute__`` to match the recording gate.

    Attribute *lookup* is the single hottest operation a wrapper can
    intercept — every method call on a shared class pays it — so the
    read path only exists while a sanitizer is actually recording.
    Writes keep their (much rarer) always-on wrapper, which is also what
    keeps ``_tracked_fields`` warm across recording toggles.
    """
    global _reads_patched
    want = _active is not None and _active._recording
    if want == _reads_patched:
        return
    _reads_patched = want
    for cls, (_, orig_getattribute, _, read_wrapper) in _instrumented.items():
        target = read_wrapper if want else orig_getattribute
        cls.__getattribute__ = target  # type: ignore[method-assign, assignment]


def _deinstrument_all() -> None:
    global _reads_patched
    for cls, (orig_setattr, orig_getattribute, orig_init, _) in _instrumented.items():
        cls.__setattr__ = orig_setattr  # type: ignore[method-assign, assignment]
        cls.__getattribute__ = orig_getattribute  # type: ignore[method-assign, assignment]
        cls.__init__ = orig_init  # type: ignore[misc]
    _instrumented.clear()
    _reads_patched = False


# ---------------------------------------------------------------------------
# Global install / modes
# ---------------------------------------------------------------------------


def mode() -> str:
    """``off`` | ``on`` | ``auto`` from ``REPRO_RACESAN``."""
    raw = os.environ.get("REPRO_RACESAN", "auto").lower()
    if raw in ("0", "off", "false"):
        return "off"
    if raw in ("1", "on", "true"):
        return "on"
    return "auto"


def active() -> Optional[RaceSanitizer]:
    return _active


def install(sample_every: Optional[int] = None) -> RaceSanitizer:
    """Instrument every registered class; idempotent.

    Call before the application modules import (the root conftest does)
    so classes decorated at import time are instrumented immediately.
    """
    global _active, _installed
    if _active is not None:
        return _active
    if sample_every is None:
        sample_every = int(os.environ.get("REPRO_RACESAN_SAMPLE", "1"))
    sanitizer = RaceSanitizer(sample_every=sample_every)
    _active = sanitizer
    _installed = True
    for cls in list(_registered):
        _instrument_class(cls)
    return sanitizer


def uninstall() -> None:
    """Restore every instrumented class and drop the sanitizer."""
    global _active, _installed
    _deinstrument_all()
    _active = None
    _installed = False
    _sync_read_patch()


def set_recording(flag: bool) -> None:
    """Gate the access pipeline (suites opt in per test)."""
    if _active is not None:
        _active.recording = bool(flag)


@contextmanager
def scoped(
    sample_every: int = 1, recording: bool = True
) -> Iterator[RaceSanitizer]:
    """A private sanitizer for one block (tests): the global one —
    including its recorded races — is untouched and restored on exit."""
    global _active, _installed
    prev_active, prev_installed = _active, _installed
    sanitizer = RaceSanitizer(sample_every=sample_every)
    _active = sanitizer
    _installed = True
    sanitizer.recording = recording  # after _active: the setter syncs reads
    for cls in list(_registered):
        _instrument_class(cls)
    try:
        yield sanitizer
    finally:
        _active = prev_active
        _installed = prev_installed
        _sync_read_patch()
        if not prev_installed:
            _deinstrument_all()

"""Grid observability: per-proxy metrics, spans, on-demand aggregation.

The paper's Layer 3 design — per-site collection, global compilation
only on demand — applied to the middleware's *own* telemetry.  Each
proxy owns an :class:`ObsHub` (a metrics registry plus a span
recorder); shared infrastructure (the reactor) reports into the
process-level registry; nothing is pushed anywhere.  The grid view is
compiled over the control plane via the ``OBS_DUMP`` op when a UI or
operator asks for it.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    enabled,
    fold_snapshots,
    get_global_registry,
    reset_global_registry,
    set_enabled,
)
from repro.obs.lockwatch import LockOrderError, LockOrderWatchdog
from repro.obs.racesan import (
    RaceError,
    RaceSanitizer,
    shared_state,
    watch,
)
from repro.obs.trace import (
    Span,
    SpanRecorder,
    TraceContext,
    current_trace,
    mint_trace,
    swap_trace,
    use_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "LockOrderError",
    "LockOrderWatchdog",
    "MetricsRegistry",
    "ObsHub",
    "RaceError",
    "RaceSanitizer",
    "Span",
    "SpanRecorder",
    "TraceContext",
    "current_trace",
    "enabled",
    "fold_snapshots",
    "get_global_registry",
    "mint_trace",
    "reset_global_registry",
    "set_enabled",
    "shared_state",
    "swap_trace",
    "use_trace",
    "watch",
]


class ObsHub:
    """One owner's observability bundle: metrics + spans + dump."""

    def __init__(
        self,
        name: str,
        clock: Callable[[], float] = time.time,
        span_capacity: int = 2048,
    ) -> None:
        self.name = name
        self.metrics = MetricsRegistry(name=name)
        self.spans = SpanRecorder(origin=name, capacity=span_capacity, clock=clock)

    def dump(
        self,
        trace_id: Optional[str] = None,
        max_spans: Optional[int] = None,
        include_process: bool = True,
    ) -> dict[str, Any]:
        """The ``OBS_DUMP`` body: plain dicts only, wire- and JSON-safe.

        ``include_process`` folds in the process-level registry (reactor
        loop lag, shared write queues) — every proxy in this process
        reports the same shared-infrastructure view, which is accurate:
        they really do share those loops.
        """
        out: dict[str, Any] = {
            "name": self.name,
            "metrics": self.metrics.snapshot(),
            "spans": self.spans.records(trace_id=trace_id, limit=max_spans),
            "spans_recorded": self.spans.recorded,
            "spans_dropped": self.spans.dropped,
        }
        if include_process:
            out["process"] = get_global_registry().snapshot()
        return out

"""Runtime lock-order watchdog: lockdep for the test suite.

gridlint's GL103 extracts lock orders a class exhibits *lexically*; this
module records the orders the process exhibits *dynamically*, across
classes and through dispatch the AST cannot follow.  The two are a pair:
the static rule catches what never runs under test, the watchdog catches
what the static view cannot resolve.

Model (a deliberately small lockdep):

* every watched lock gets a monotonic **serial** at creation (never
  ``id()`` — freed locks recycle ids and would weld unrelated locks into
  false cycles);
* each thread keeps a stack of serials it currently holds;
* acquiring ``b`` while holding ``a`` inserts the directed edge
  ``a → b`` into a process-wide graph (first witness wins: we keep the
  thread and creation sites for the report);
* a new edge that closes a directed cycle is a **violation** — two code
  paths take the same locks in opposite orders, i.e. a latent deadlock.

Violations are *recorded*, not raised at the acquisition site (raising
inside arbitrary lock acquisitions corrupts unrelated code paths);
``assert_clean()`` — called from ``pytest_sessionfinish`` — fails the
suite with the full report.

:func:`install` patches ``threading.Lock``/``threading.RLock`` so every
lock created afterwards is watched; it is called from the root
``conftest.py`` before collection (import-time locks included) and is
disabled with ``REPRO_LOCKWATCH=0``.  Production code never imports this
module at runtime — the patch exists only under tests.
"""

from __future__ import annotations

import itertools
import sys
import threading
from types import FrameType
from typing import Any, Callable, Optional

__all__ = [
    "LockOrderError",
    "LockOrderWatchdog",
    "active",
    "install",
    "raw_lock",
    "raw_rlock",
    "uninstall",
]


class LockOrderError(AssertionError):
    """Raised by :meth:`LockOrderWatchdog.assert_clean` on recorded cycles."""


def _creation_site() -> str:
    """``file:line`` of the frame that created a lock (best effort)."""
    frame: Optional[FrameType] = sys._getframe(2)
    while frame is not None:
        filename = frame.f_code.co_filename
        if "threading" not in filename and "lockwatch" not in filename:
            return f"{filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


class _WatchedLock:
    """Delegating wrapper around a real lock, reporting to a watchdog.

    Implements the full ``Lock``/``RLock`` surface ``threading.Condition``
    probes for (``_is_owned``, and for RLocks ``_release_save`` /
    ``_acquire_restore``) so wrapped locks remain valid Condition
    arguments.  Unknown attributes delegate to the real lock.
    """

    __slots__ = ("_lock", "_serial", "_site", "_watchdog", "_owner", "__weakref__")

    def __init__(
        self, watchdog: "LockOrderWatchdog", lock: Any, serial: int, site: str
    ):
        self._watchdog = watchdog
        self._lock = lock
        self._serial = serial
        self._site = site
        self._owner: Optional[int] = None

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        acquired = self._lock.acquire(*args, **kwargs)
        if acquired:
            self._owner = threading.get_ident()
            self._watchdog.note_acquire(self)
        return bool(acquired)

    def release(self) -> None:
        self._watchdog.note_release(self)
        if self._owner == threading.get_ident():
            self._owner = None
        self._lock.release()

    def locked(self) -> bool:
        return bool(self._lock.locked())

    def __enter__(self) -> "_WatchedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def _is_owned(self) -> bool:
        is_owned = getattr(self._lock, "_is_owned", None)
        if is_owned is not None:
            return bool(is_owned())
        return self._owner == threading.get_ident()

    def _release_save(self) -> Any:
        # Condition.wait: RLocks drop every recursion level at once;
        # plain locks (no _release_save of their own) just release.
        self._watchdog.note_release_all(self)
        inner = getattr(self._lock, "_release_save", None)
        if inner is not None:
            return inner()
        self._lock.release()
        return None

    def _acquire_restore(self, state: Any) -> None:
        inner = getattr(self._lock, "_acquire_restore", None)
        if inner is not None:
            inner(state)
        else:
            self._lock.acquire()
        self._owner = threading.get_ident()
        self._watchdog.note_acquire(self)

    def __getattr__(self, name: str) -> Any:
        return getattr(object.__getattribute__(self, "_lock"), name)

    def __repr__(self) -> str:
        return f"<watched {self._lock!r} serial={self._serial} from {self._site}>"


class LockOrderWatchdog:
    """Process-wide acquisition-order graph with cycle detection."""

    def __init__(self) -> None:
        self._serials = itertools.count(1)
        self._tls = threading.local()
        # The bookkeeping mutex must be a *real* lock: a watched one
        # would recurse into note_acquire forever.
        self._mutex = _real_lock_factory()
        self._edges: dict[tuple[int, int], str] = {}
        self._adjacency: dict[int, set[int]] = {}
        self._sites: dict[int, str] = {}
        self.violations: list[str] = []

    # -- wrapping --------------------------------------------------------

    def wrap(self, lock: Any, site: Optional[str] = None) -> _WatchedLock:
        serial = next(self._serials)
        site = site if site is not None else _creation_site()
        self._sites[serial] = site
        return _WatchedLock(self, lock, serial, site)

    # -- acquisition hooks ----------------------------------------------

    def _held(self) -> list[int]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    def note_acquire(self, lock: _WatchedLock) -> None:
        held = self._held()
        serial = lock._serial
        if serial in held:  # re-entrant RLock acquire: no new ordering info
            held.append(serial)
            return
        if held:
            self._add_edge(held[-1], serial)
        held.append(serial)

    def note_release(self, lock: _WatchedLock) -> None:
        held = self._held()
        serial = lock._serial
        for index in range(len(held) - 1, -1, -1):
            if held[index] == serial:
                del held[index]
                return

    def note_release_all(self, lock: _WatchedLock) -> None:
        held = self._held()
        serial = lock._serial
        held[:] = [entry for entry in held if entry != serial]

    # -- graph -----------------------------------------------------------

    def _add_edge(self, src: int, dst: int) -> None:
        if (src, dst) in self._edges:  # unlocked fast path (GIL-atomic read)
            return
        with self._mutex:
            if (src, dst) in self._edges:
                return
            cycle = self._path(dst, src)
            self._edges[(src, dst)] = threading.current_thread().name
            self._adjacency.setdefault(src, set()).add(dst)
            if cycle is not None:
                self._record_violation([src, *cycle])

    def _path(self, start: int, goal: int) -> Optional[list[int]]:
        """Serial path ``start .. goal`` if one exists (DFS)."""
        stack: list[tuple[int, list[int]]] = [(start, [start])]
        seen: set[int] = set()
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in seen:
                continue
            seen.add(node)
            for nxt in self._adjacency.get(node, ()):
                stack.append((nxt, [*path, nxt]))
        return None

    def _record_violation(self, cycle: list[int]) -> None:
        # ``cycle`` is already a closed walk (src -> ... -> src).
        labels = [
            f"lock#{serial} ({self._sites.get(serial, '<unknown>')})"
            for serial in cycle
        ]
        thread = threading.current_thread().name
        self.violations.append(
            "lock order cycle: " + " -> ".join(labels) + f" [closed by {thread}]"
        )

    # -- reporting -------------------------------------------------------

    def assert_clean(self) -> None:
        if self.violations:
            raise LockOrderError(
                f"{len(self.violations)} lock-order violation(s):\n"
                + "\n".join(f"  {v}" for v in self.violations)
            )


# ---------------------------------------------------------------------------
# Global install (threading.Lock / threading.RLock patch)
# ---------------------------------------------------------------------------

_active: Optional[LockOrderWatchdog] = None
_original_lock: Callable[[], Any] = threading.Lock
_original_rlock: Callable[[], Any] = threading.RLock


def _real_lock_factory() -> Any:
    """An *unwatched* mutex, regardless of whether install() ran."""
    return _original_lock()


def raw_lock() -> Any:
    """An unwatched ``threading.Lock`` (for tests exercising private
    watchdog instances without polluting the global graph)."""
    return _original_lock()


def raw_rlock() -> Any:
    """An unwatched ``threading.RLock`` (see :func:`raw_lock`)."""
    return _original_rlock()


def active() -> Optional[LockOrderWatchdog]:
    return _active


def install() -> LockOrderWatchdog:
    """Patch the ``threading`` lock factories; idempotent."""
    global _active
    if _active is not None:
        return _active
    watchdog = LockOrderWatchdog()

    def make_lock() -> _WatchedLock:
        return watchdog.wrap(_original_lock())

    def make_rlock() -> _WatchedLock:
        return watchdog.wrap(_original_rlock())

    threading.Lock = make_lock  # type: ignore[assignment]
    threading.RLock = make_rlock  # type: ignore[assignment]
    _active = watchdog
    return watchdog


def uninstall() -> None:
    """Restore the original factories (already-wrapped locks keep
    reporting to the now-inactive watchdog; they stay functional)."""
    global _active
    threading.Lock = _original_lock  # type: ignore[assignment]
    threading.RLock = _original_rlock  # type: ignore[assignment]
    _active = None

"""Lock-cheap metrics: counters, gauges, fixed-bucket histograms.

The paper's Layer 3 keeps status collection *local* — "each proxy
responsible for the collection and control of the site where it is
located" — and compiles the global view only on demand.  The metrics
layer follows the same shape: every proxy owns a
:class:`MetricsRegistry` of its own hot-path instruments, nothing is
pushed anywhere, and the grid-wide view is compiled by the control
plane (``OBS_DUMP``) only when someone asks.

Instruments are deliberately primitive:

* :class:`Counter` — monotone add-only total (sends, retries, drops).
* :class:`Gauge` — a level that moves both ways (write-queue bytes).
* :class:`Histogram` — fixed upper-bound buckets with quantile
  estimates read off the bucket edges (loop lag, dispatch latency).
  Fixed buckets keep ``observe`` O(log buckets) with one short lock —
  no allocation, no reservoir, no rebalancing on the hot path.

Each instrument takes one uncontended ``threading.Lock`` per update
(CPython's ``+=`` on an attribute is not atomic under preemption), and
the whole layer can be switched off — ``REPRO_OBS=off`` or
:func:`set_enabled` — turning every update into a single flag check,
which is what the ``bench_obs`` overhead gate measures against.
"""

from __future__ import annotations

import bisect
import os
import threading
from typing import Callable, Optional, Sequence, TypeVar

from repro.obs.racesan import shared_state

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "enabled",
    "fold_snapshots",
    "get_global_registry",
    "reset_global_registry",
    "set_enabled",
]

#: Latency bucket upper bounds in seconds: 10µs to 10s, roughly
#: log-spaced.  Values above the last edge land in the overflow bucket.
DEFAULT_LATENCY_BUCKETS = (
    0.00001, 0.0001, 0.0005, 0.001, 0.005, 0.01,
    0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
)

_enabled = os.environ.get("REPRO_OBS", "on").lower() not in ("off", "0", "false")

#: Get-or-create type parameter: the registry stores heterogeneous
#: instruments but each name resolves to exactly one concrete kind.
_InstrumentT = TypeVar("_InstrumentT", "Counter", "Gauge", "Histogram")


def set_enabled(flag: bool) -> None:
    """Globally enable/disable every instrument (benchmarks toggle this)."""
    global _enabled
    _enabled = bool(flag)


def enabled() -> bool:
    return _enabled


class Counter:
    """Monotone counter; ``inc`` never loses updates across threads."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A level: set absolutely or moved by deltas (queue depths)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        if not _enabled:
            return
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with quantiles read off the bucket edges.

    ``bounds`` are inclusive upper edges; an observation lands in the
    first bucket whose edge is >= the value, or the overflow bucket past
    the last edge.  Quantiles report the edge of the bucket containing
    the requested rank — coarse, but stable and allocation-free.
    """

    __slots__ = ("name", "bounds", "_counts", "_overflow", "_sum", "_count",
                 "_max", "_lock")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted and non-empty: {bounds}")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * len(self.bounds)
        self._overflow = 0
        self._sum = 0.0
        self._count = 0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        if not _enabled:
            return
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            if index >= len(self.bounds):
                self._overflow += 1
            else:
                self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Upper edge of the bucket holding the ``q``-th observation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            rank = q * total
            seen = 0
            for edge, count in zip(self.bounds, self._counts):
                seen += count
                if seen >= rank:
                    return edge
            return self._max  # rank fell in the overflow bucket

    def to_dict(self) -> dict[str, object]:
        with self._lock:
            counts = list(self._counts)
            overflow = self._overflow
            total = self._count
            total_sum = self._sum
            observed_max = self._max
        out: dict[str, object] = {
            "count": total,
            "sum": total_sum,
            "max": observed_max,
            "buckets": [[edge, count] for edge, count in zip(self.bounds, counts)],
            "overflow": overflow,
        }
        for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            out[label] = self.quantile(q)
        return out


@shared_state
class MetricsRegistry:
    """Named instruments for one owner (a proxy, or the process).

    ``counter``/``gauge``/``histogram`` get-or-create, so callers on the
    hot path cache the instrument once and everyone else can look it up
    by name.  :meth:`snapshot` emits plain dicts — gridcodec- and
    JSON-encodable with no middleware types — because snapshots travel
    in ``OBS_DUMP`` replies.
    """

    def __init__(self, name: str = "metrics") -> None:
        self.name = name
        self._instruments: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(
        self, name: str, kind: type[_InstrumentT], factory: Callable[[], _InstrumentT]
    ) -> _InstrumentT:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                created = factory()
                self._instruments[name] = created
                return created
            if not isinstance(instrument, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, bounds))

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> dict[str, object]:
        """Point-in-time view: ``{"counters": ..., "gauges": ..., "histograms": ...}``.

        Counter values in successive snapshots are monotone non-decreasing
        (the property suite holds us to that).
        """
        with self._lock:
            items = list(self._instruments.items())
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, object]] = {}
        for name, instrument in items:
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            elif isinstance(instrument, Histogram):
                histograms[name] = instrument.to_dict()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


def fold_snapshots(snapshots: Sequence[dict]) -> dict:
    """Fold per-worker registry snapshots into one combined snapshot.

    The shard layer keeps one shared-nothing :class:`MetricsRegistry` per
    worker process — the paper's local-collect model — and the parent
    compiles the global view only on demand (``SHARD_STATS`` →
    ``OBS_DUMP``), which is where this fold runs.  Counters and gauges
    sum by name; histograms with identical bucket bounds merge
    bucket-wise (quantiles are re-read off the merged buckets, and the
    merged ``max`` is the max of maxes).  Histograms whose bounds differ
    keep the first snapshot's shape and fold only count/sum/max — shapes
    only diverge across mixed-version workers, where approximate beats
    wrong.  Input snapshots are not mutated.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0.0) + value
        for name, hist in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    key: ([list(pair) for pair in value] if key == "buckets"
                          else value)
                    for key, value in hist.items()
                }
                continue
            merged["count"] += hist.get("count", 0)
            merged["sum"] += hist.get("sum", 0.0)
            merged["max"] = max(merged.get("max", 0.0), hist.get("max", 0.0))
            theirs = hist.get("buckets", [])
            ours = merged.get("buckets", [])
            if [edge for edge, _ in ours] == [edge for edge, _ in theirs]:
                for pair, (_, count) in zip(ours, theirs):
                    pair[1] += count
                merged["overflow"] = (
                    merged.get("overflow", 0) + hist.get("overflow", 0)
                )
    for hist in histograms.values():
        _requantile(hist)
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def _requantile(hist: dict) -> None:
    """Recompute p50/p95/p99 from a folded histogram's buckets."""
    total = hist.get("count", 0)
    if not total:
        return
    buckets = hist.get("buckets", [])
    for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
        rank = q * total
        seen = 0
        value = hist.get("max", 0.0)  # rank in the overflow bucket
        for edge, count in buckets:
            seen += count
            if seen >= rank:
                value = edge
                break
        hist[label] = value


# ---------------------------------------------------------------------------
# The process-wide registry (shared infrastructure: the reactor's loops and
# channels are not owned by any single proxy)
# ---------------------------------------------------------------------------

_global_lock = threading.Lock()
_global_registry: Optional[MetricsRegistry] = None


def get_global_registry() -> MetricsRegistry:
    """Process-level instruments (reactor loops, shared transports)."""
    global _global_registry
    with _global_lock:
        if _global_registry is None:
            _global_registry = MetricsRegistry(name="process")
        return _global_registry


def reset_global_registry() -> None:
    """Discard the process registry (tests and benchmarks only)."""
    global _global_registry
    with _global_lock:
        _global_registry = None

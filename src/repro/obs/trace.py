"""Cross-site trace propagation: trace/span ids and per-hop span records.

A request that crosses the grid touches several proxies: the originator
sends a control message through its tunnel, the destination's dispatch
pipeline runs the handler, and the reply rides back.  To see *where*
time went, the originating proxy mints a :class:`TraceContext` (a
trace id plus the current span id), carries it in the control message's
expandable header, and every hop records a :class:`Span` into its own
proxy's :class:`SpanRecorder` — local collection, exactly like the
paper's status model; the grid-wide trace is compiled on demand by
asking each proxy for its spans over ``OBS_DUMP``.

Propagation uses a thread-local "current trace": the dispatch pipeline
installs the inbound context around the handler (:func:`use_trace`), so
any nested request the handler makes links into the same trace.
"""

from __future__ import annotations

import random
import secrets
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from types import TracebackType
from typing import Any, Callable, Iterator, Optional

from repro.obs.metrics import enabled

__all__ = [
    "Span",
    "SpanRecorder",
    "TraceContext",
    "current_trace",
    "mint_trace",
    "swap_trace",
    "use_trace",
]


_id_local = threading.local()


def _new_id(nbytes: int) -> str:
    """A random hex id.  Ids are identifiers, not secrets: a per-thread
    PRNG seeded once from the OS (so processes and threads don't collide)
    is half the cost of ``secrets`` per call, and span minting sits on
    the dispatch hot path."""
    rng = getattr(_id_local, "rng", None)
    if rng is None:
        rng = _id_local.rng = random.Random(secrets.randbits(64))
    return "%0*x" % (nbytes * 2, rng.getrandbits(nbytes * 8))


@dataclass(frozen=True)
class TraceContext:
    """What travels on the wire: the trace id and the sender's span id."""

    trace_id: str
    span_id: str

    def to_wire(self) -> dict[str, str]:
        """The expandable-header form carried in control messages."""
        return {"tid": self.trace_id, "sid": self.span_id}

    @classmethod
    def from_wire(cls, blob: Any) -> Optional["TraceContext"]:
        """Parse a header blob; malformed or absent context is ``None``.

        Trace headers are advisory — a peer sending garbage loses its
        trace linkage, never the request.
        """
        if not isinstance(blob, dict):
            return None
        trace_id = blob.get("tid")
        span_id = blob.get("sid")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        if not trace_id or not span_id:
            return None
        return cls(trace_id=trace_id, span_id=span_id)


def mint_trace() -> TraceContext:
    """A fresh root context (new trace, new root span id)."""
    return TraceContext(trace_id=_new_id(8), span_id=_new_id(4))


_tls = threading.local()


def current_trace() -> Optional[TraceContext]:
    """The context installed on this thread, if any."""
    return getattr(_tls, "context", None)


@contextmanager
def use_trace(
    context: Optional[TraceContext],
) -> Iterator[Optional[TraceContext]]:
    """Install ``context`` as this thread's current trace for the block."""
    previous = swap_trace(context)
    try:
        yield context
    finally:
        swap_trace(previous)


def swap_trace(context: Optional[TraceContext]) -> Optional[TraceContext]:
    """Install ``context`` and return the previous one (hot-path form of
    :func:`use_trace` — pair with a ``try/finally`` restore)."""
    previous = getattr(_tls, "context", None)
    _tls.context = context
    return previous


class Span:
    """One timed hop of a trace at one proxy."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "origin",
                 "started_at", "ended_at", "tags", "_recorder")

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        origin: str,
        started_at: float,
        tags: Optional[dict[str, Any]] = None,
        recorder: Optional["SpanRecorder"] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.origin = origin
        self.started_at = started_at
        self.ended_at: Optional[float] = None
        self.tags = dict(tags) if tags else {}
        self._recorder = recorder

    @property
    def context(self) -> TraceContext:
        """The context a child hop should inherit from this span."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def finish(self, **tags: Any) -> None:
        """End the span (idempotent) and commit it to the recorder."""
        if self.ended_at is not None:
            return
        recorder = self._recorder
        self.ended_at = recorder.clock() if recorder is not None else time.time()
        if tags:
            self.tags.update(tags)
        if recorder is not None:
            recorder._commit(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: Optional[type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc is not None:
            self.tags.setdefault("error", str(exc))
        self.finish()

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "origin": self.origin,
            "started_at": self.started_at,
            "ended_at": self.ended_at,
            "elapsed_s": (
                None if self.ended_at is None else self.ended_at - self.started_at
            ),
            "tags": dict(self.tags),
        }


class SpanRecorder:
    """Bounded store of finished spans at one proxy.

    ``capacity`` bounds memory: the recorder keeps the most recent spans
    and counts what it dropped, so a chatty grid degrades to *recent*
    visibility instead of unbounded growth.  Only finished spans are
    kept — a span abandoned mid-flight never surfaces half-recorded.
    """

    def __init__(
        self,
        origin: str,
        capacity: int = 2048,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.origin = origin
        self.clock = clock
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._recorded = 0
        self._dropped = 0

    def start(
        self,
        name: str,
        parent: Optional[TraceContext] = None,
        tags: Optional[dict[str, Any]] = None,
    ) -> Span:
        """Open a span: child of ``parent`` when given, else a new root.

        With the obs layer disabled (``REPRO_OBS=off`` /
        :func:`~repro.obs.metrics.set_enabled`), returns a detached span:
        no id minting, no clock read, and ``finish`` commits nothing —
        the same kill switch the metrics instruments honour.
        """
        if not enabled():
            return Span(
                name=name, trace_id="", span_id="", parent_id=None,
                origin=self.origin, started_at=0.0, tags=tags, recorder=None,
            )
        if parent is None:
            trace_id, parent_id = _new_id(8), None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        return Span(
            name=name,
            trace_id=trace_id,
            span_id=_new_id(4),
            parent_id=parent_id,
            origin=self.origin,
            started_at=self.clock(),
            tags=tags,
            recorder=self,
        )

    def _commit(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self._dropped += 1
            self._spans.append(span)
            self._recorded += 1

    def records(
        self, trace_id: Optional[str] = None, limit: Optional[int] = None
    ) -> list[dict[str, Any]]:
        """Finished spans, oldest first, optionally filtered by trace."""
        with self._lock:
            spans = list(self._spans)
        out = [
            span.to_dict()
            for span in spans
            if trace_id is None or span.trace_id == trace_id
        ]
        if limit is not None and len(out) > limit:
            out = out[-limit:]
        return out

    @property
    def recorded(self) -> int:
        with self._lock:
            return self._recorded

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

"""The web access interface.

A deliberately small HTTP server (stdlib only) over the Grid API:

====================  ==========================================
Path                  Content
====================  ==========================================
``/``                 HTML overview (sites, nodes, tunnels)
``/api/summary``      JSON grid summary
``/api/status``       JSON compiled global status
``/api/topology``     JSON sites/proxies/tunnels
``/api/station?node`` JSON single station state
``/api/obs``          JSON compiled telemetry (``?trace=<id>`` filters)
====================  ==========================================

Read-only by design: mutating operations go through the authenticated
proxy paths, not the status page.
"""

from __future__ import annotations

import html
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.control.api import GridApi
from repro.core.grid import Grid, GridError

__all__ = ["GridWebServer"]


class GridWebServer:
    """Serves the grid's status pages on localhost."""

    def __init__(self, grid: Grid, host: str = "127.0.0.1", port: int = 0):
        self.api = GridApi(grid)
        handler = self._make_handler()
        self._server = ThreadingHTTPServer((host, port), handler)
        self.host, self.port = self._server.server_address
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(  # gridlint: disable=GL102 -- stdlib HTTPServer.serve_forever needs a dedicated thread; stop() shuts it down
            target=self._server.serve_forever, daemon=True, name="grid-web"
        )
        self._thread.start()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()

    def __enter__(self) -> "GridWebServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _make_handler(self):
        api = self.api

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # silence request logs
                pass

            def _send(self, code: int, content_type: str, body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _json(self, payload, code: int = 200) -> None:
                self._send(
                    code,
                    "application/json",
                    json.dumps(payload, indent=2).encode("utf-8"),
                )

            def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
                parsed = urlparse(self.path)
                try:
                    if parsed.path == "/":
                        self._send(200, "text/html", _render_overview(api))
                    elif parsed.path == "/api/summary":
                        self._json(api.summary())
                    elif parsed.path == "/api/status":
                        self._json(api.grid_state())
                    elif parsed.path == "/api/topology":
                        self._json(api.topology())
                    elif parsed.path == "/api/station":
                        query = parse_qs(parsed.query)
                        node = query.get("node", [""])[0]
                        self._json(api.station_state(node))
                    elif parsed.path == "/api/obs":
                        query = parse_qs(parsed.query)
                        trace = query.get("trace", [None])[0]
                        raw_max = query.get("max_spans", [None])[0]
                        self._json(
                            api.observability(
                                trace_id=trace,
                                max_spans=int(raw_max) if raw_max else None,
                            )
                        )
                    else:
                        self._json({"error": "not found"}, code=404)
                except GridError as exc:
                    self._json({"error": str(exc)}, code=404)
                except Exception as exc:  # pragma: no cover - defensive
                    self._json({"error": str(exc)}, code=500)

        return Handler


def _render_overview(api: GridApi) -> bytes:
    summary = api.summary()
    topology = api.topology()["sites"]
    rows = []
    for site, info in topology.items():
        rows.append(
            "<tr><td>{site}</td><td>{proxy}</td><td>{nodes}</td>"
            "<td>{tunnels}</td></tr>".format(
                site=html.escape(site),
                proxy=html.escape(info["proxy"]),
                nodes=", ".join(html.escape(n) for n in info["nodes"]),
                tunnels=", ".join(html.escape(t) for t in info["tunnels"]),
            )
        )
    page = f"""<!DOCTYPE html>
<html><head><title>Proxy Grid</title>
<style>
 body {{ font-family: sans-serif; margin: 2em; }}
 table {{ border-collapse: collapse; }}
 td, th {{ border: 1px solid #999; padding: 0.3em 0.8em; }}
</style></head>
<body>
<h1>Computational Grid — proxy architecture</h1>
<p>{summary['sites']} sites, {summary['nodes']} nodes
({summary['alive_nodes']} alive), {summary['users']} users.</p>
<table>
<tr><th>Site</th><th>Proxy</th><th>Nodes</th><th>Tunnels</th></tr>
{''.join(rows)}
</table>
<p>JSON: <a href="/api/summary">summary</a> ·
<a href="/api/status">status</a> ·
<a href="/api/topology">topology</a> ·
<a href="/api/obs">observability</a></p>
</body></html>"""
    return page.encode("utf-8")

"""The ``proxigrid`` command line.

The paper's access-interface layer includes a command line through which
the user "interacts directly or indirectly with the Grid's functions".
Because the reproduction runs whole grids inside one process, the CLI
operates on a *demo grid* it constructs per invocation (sites and nodes
set by flags), then performs the requested grid function against it:

``proxigrid status``     compiled global status
``proxigrid station N``  one station's RAM/CPU/HD state
``proxigrid submit``     authenticated job submission (origin→target)
``proxigrid mpi-pi``     MPI π estimation across all sites
``proxigrid web``        serve the web interface until interrupted
``proxigrid topology``   sites, proxies, tunnels
``proxigrid obs``        compiled grid telemetry (metrics + trace spans)
``proxigrid shard-serve``  standalone multi-core sharded frame frontend
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.control.api import GridApi
from repro.core.grid import Grid

__all__ = ["build_demo_grid", "main"]


def build_demo_grid(sites: int, nodes: int, transport: str = "inproc") -> Grid:
    """A connected demo grid with one default user."""
    grid = Grid(transport=transport)
    for index in range(sites):
        grid.add_site(f"site{chr(ord('A') + index)}", nodes=nodes)
    grid.connect_all()
    grid.add_user("demo", "demo")
    grid.grant("user:demo", "site:*", "submit")
    return grid


def _pi_app(comm, samples_per_rank: int = 20_000):
    """Monte-Carlo π: each rank samples, root reduces (runs unmodified
    whether ranks share a site or cross the grid)."""
    import random

    from repro.mpi.datatypes import SUM

    rng = random.Random(1234 + comm.rank)
    hits = sum(
        1
        for _ in range(samples_per_rank)
        if rng.random() ** 2 + rng.random() ** 2 <= 1.0
    )
    total = comm.allreduce(hits, SUM, timeout=60.0)
    return 4.0 * total / (samples_per_rank * comm.size)


def _cmd_status(grid: Grid, args) -> int:
    print(json.dumps(GridApi(grid).grid_state(), indent=2))
    return 0


def _cmd_station(grid: Grid, args) -> int:
    print(json.dumps(GridApi(grid).station_state(args.node), indent=2))
    return 0


def _cmd_topology(grid: Grid, args) -> int:
    print(json.dumps(GridApi(grid).topology(), indent=2))
    return 0


def _cmd_obs(grid: Grid, args) -> int:
    # Exercise the control plane first so the dump has something to show:
    # a cross-site status compile stamps request/handle spans everywhere.
    grid.global_status()
    view = GridApi(grid).observability(
        trace_id=args.trace, max_spans=args.max_spans
    )
    print(json.dumps(view, indent=2))
    return 0


def _cmd_submit(grid: Grid, args) -> int:
    result = grid.submit_job(
        args.user,
        args.password,
        args.task,
        params=json.loads(args.params),
        origin_site=args.origin,
        target_site=args.target,
    )
    print(json.dumps({"result": result}))
    return 0


def _cmd_mpi_pi(grid: Grid, args) -> int:
    result = grid.run_mpi(
        _pi_app, nprocs=args.nprocs, args=(args.samples,), timeout=300.0
    )
    result.raise_first()
    print(
        json.dumps(
            {
                "pi_estimate": result.returns[0],
                "ranks": args.nprocs,
                "placement": result.placement,
            },
            indent=2,
        )
    )
    return 0


def _cmd_web(grid: Grid, args) -> int:
    from repro.ui.web import GridWebServer

    server = GridWebServer(grid, port=args.port)
    server.start()
    print(f"grid web interface at {server.url} (Ctrl-C to stop)")
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cmd_shard_serve(args) -> int:
    """Run a standalone sharded frame frontend until interrupted.

    No demo grid: the shard fleet *is* the service.  ``--shards``
    defaults to ``$REPRO_SHARDS``; stats are printed on Ctrl-C.
    """
    import os
    import time

    from repro.core.shardmgr import SHARDS_ENV, ShardManager

    shards = args.shards
    if shards is None:
        shards = int(os.environ.get(SHARDS_ENV, "2") or "2")
    manager = ShardManager(
        shards=shards, host=args.host, port=args.port, mode=args.mode
    ).start()
    host, port = manager.address
    print(
        f"shard frontend at {host}:{port} "
        f"({manager.shards} workers, mode={manager.mode}; Ctrl-C to stop)"
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print(json.dumps(manager.folded_snapshot(), indent=2))
    finally:
        manager.stop()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="proxigrid",
        description="Proxy-server computational grid (Middleware 2003 reproduction)",
    )
    parser.add_argument("--sites", type=int, default=2, help="demo sites")
    parser.add_argument("--nodes", type=int, default=2, help="nodes per site")
    parser.add_argument(
        "--transport", choices=["inproc", "tcp"], default="inproc"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("status", help="compiled global grid status")

    station = sub.add_parser("station", help="one station's state")
    station.add_argument("node", help="station name, e.g. siteA.n0")

    sub.add_parser("topology", help="sites, proxies and tunnels")

    obs = sub.add_parser("obs", help="compiled grid telemetry (OBS_DUMP)")
    obs.add_argument("--trace", default=None, help="filter spans to one trace id")
    obs.add_argument("--max-spans", type=int, default=None, dest="max_spans")

    submit = sub.add_parser("submit", help="submit an authenticated job")
    submit.add_argument("--user", default="demo")
    submit.add_argument("--password", default="demo")
    submit.add_argument("--task", default="echo")
    submit.add_argument("--params", default='{"value": "hello grid"}')
    submit.add_argument("--origin", default=None)
    submit.add_argument("--target", default=None)

    pi = sub.add_parser("mpi-pi", help="estimate pi with MPI across the grid")
    pi.add_argument("--nprocs", type=int, default=4)
    pi.add_argument("--samples", type=int, default=20_000)

    web = sub.add_parser("web", help="serve the web interface")
    web.add_argument("--port", type=int, default=8088)

    shard = sub.add_parser(
        "shard-serve", help="multi-core sharded frame frontend (REPRO_SHARDS)"
    )
    shard.add_argument("--shards", type=int, default=None,
                       help="worker processes (default: $REPRO_SHARDS or 2)")
    shard.add_argument("--host", default="127.0.0.1")
    shard.add_argument("--port", type=int, default=0)
    shard.add_argument("--mode", choices=["reuseport", "fdpass"], default=None)
    return parser


_COMMANDS = {
    "status": _cmd_status,
    "station": _cmd_station,
    "topology": _cmd_topology,
    "obs": _cmd_obs,
    "submit": _cmd_submit,
    "mpi-pi": _cmd_mpi_pi,
    "web": _cmd_web,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "shard-serve":
        return _cmd_shard_serve(args)  # standalone: no demo grid needed
    grid = build_demo_grid(args.sites, args.nodes, transport=args.transport)
    try:
        return _COMMANDS[args.command](grid, args)
    finally:
        grid.shutdown()


if __name__ == "__main__":
    sys.exit(main())

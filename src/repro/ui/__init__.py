"""User access interfaces.

The paper's top layer "provides the user with an access interface through
which he/she interacts directly or indirectly with the Grid's functions.
In addition to the command line, the user will have a Web page at his/her
disposal."

* :mod:`repro.ui.cli` — the ``proxigrid`` command line (demo grid,
  status, job submission, MPI demo);
* :mod:`repro.ui.web` — a small stdlib HTTP server rendering grid
  status pages and JSON endpoints from the Grid API.
"""

from repro.ui.web import GridWebServer

__all__ = ["GridWebServer"]

"""repro — a proxy-server computational grid (Middleware 2003 reproduction).

Full reimplementation of Costa, Zorzo & Guardia, *An Architecture For
Computational Grids Based On Proxy Servers*: grid middleware whose entire
control, security, monitoring and MPI-support machinery lives in per-site
border proxies rather than in every node.

Quick tour
----------
>>> from repro import Grid
>>> grid = Grid()
>>> _ = grid.add_site("A", nodes=2)
>>> _ = grid.add_site("B", nodes=2)
>>> grid.connect_all()                      # CA certs + secure tunnels
>>> grid.add_user("alice", "pw")
>>> grid.grant("user:alice", "site:*", "submit")
>>> grid.submit_job("alice", "pw", "echo", {"value": 42}, target_site="B")
42
>>> from repro.mpi.datatypes import SUM
>>> grid.run_mpi(lambda c: c.allreduce(1, SUM), nprocs=4).returns
[4, 4, 4, 4]
>>> grid.shutdown()

Packages
--------
==========================  ==================================================
:mod:`repro.core`           the proxy architecture (paper's contribution)
:mod:`repro.transport`      layer 1: frames, channels, in-proc + TCP
:mod:`repro.security`       layer 2: CA, certificates, handshake, auth, tickets
:mod:`repro.control`        layer 3: monitoring, scheduling, failure detection
:mod:`repro.mpi`            layer 4 substrate: a from-scratch MPI ("minimpi")
:mod:`repro.simulation`     discrete-event substrate for scaled experiments
:mod:`repro.baselines`      per-node-security and centralised-control baselines
:mod:`repro.workloads`      seeded synthetic workload generators
:mod:`repro.ui`             command line + web access interface
:mod:`repro.threads`        distributed threads (paper future work)
:mod:`repro.dfs`            distributed filing system (paper future work)
==========================  ==================================================
"""

from repro.core.grid import Grid, GridError

__version__ = "1.0.0"

__all__ = ["Grid", "GridError", "__version__"]

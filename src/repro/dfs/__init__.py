"""A distributed filing system over the grid (paper future work).

"Distributed filing systems" are the third future-work item the paper's
architecture is intended to host.  This package provides a small but
complete one in the architecture's spirit: chunked files replicated
across *sites* (replication crosses site borders through the proxies, so
a site failure never loses data), with reads preferring local replicas —
the same locality argument the proxy makes for MPI traffic.

* :mod:`repro.dfs.storage` — per-site chunk stores with capacity
  accounting;
* :mod:`repro.dfs.metadata` — the namespace: paths, chunk maps, replica
  locations;
* :mod:`repro.dfs.filesystem` — the user-facing GridFileSystem.
"""

from repro.dfs.filesystem import DfsError, GridFileSystem
from repro.dfs.metadata import FileEntry, Namespace
from repro.dfs.storage import ChunkStore, StorageError

__all__ = [
    "ChunkStore",
    "DfsError",
    "FileEntry",
    "GridFileSystem",
    "Namespace",
    "StorageError",
]

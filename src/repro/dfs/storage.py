"""Per-site chunk stores.

Each site contributes one :class:`ChunkStore` with a capacity budget;
chunks are content-addressed (SHA-256) so integrity is verified on every
read and identical chunks deduplicate naturally within a store.
"""

from __future__ import annotations

import hashlib
import threading

__all__ = ["ChunkStore", "StorageError"]


class StorageError(Exception):
    """Capacity exhausted, missing chunk, or corruption detected."""


def chunk_id(data: bytes) -> str:
    """Content address of a chunk."""
    return hashlib.sha256(data).hexdigest()


class ChunkStore:
    """One site's chunk storage with capacity accounting."""

    def __init__(self, site: str, capacity: int = 1 << 30):
        if capacity <= 0:
            raise StorageError(f"capacity must be positive: {capacity}")
        self.site = site
        self.capacity = capacity
        self._chunks: dict[str, bytes] = {}
        self._refcounts: dict[str, int] = {}
        self._lock = threading.Lock()
        self._failed = False

    # -- failure injection -------------------------------------------------

    def fail(self) -> None:
        """Simulate the site's storage going down."""
        self._failed = True

    def recover(self) -> None:
        self._failed = False

    @property
    def available(self) -> bool:
        return not self._failed

    def _check_up(self) -> None:
        if self._failed:
            raise StorageError(f"store at site {self.site!r} is down")

    # -- chunk operations -----------------------------------------------------

    @property
    def used(self) -> int:
        with self._lock:
            return sum(len(c) for c in self._chunks.values())

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def put(self, data: bytes) -> str:
        """Store a chunk; returns its content id.  Deduplicates."""
        self._check_up()
        cid = chunk_id(data)
        with self._lock:
            if cid in self._chunks:
                self._refcounts[cid] += 1
                return cid
            current = sum(len(c) for c in self._chunks.values())
            if current + len(data) > self.capacity:
                raise StorageError(
                    f"store at {self.site!r} full: need {len(data)} B, "
                    f"{self.capacity - current} B free"
                )
            self._chunks[cid] = bytes(data)
            self._refcounts[cid] = 1
            return cid

    def get(self, cid: str) -> bytes:
        """Fetch and integrity-check a chunk."""
        self._check_up()
        with self._lock:
            data = self._chunks.get(cid)
        if data is None:
            raise StorageError(f"chunk {cid[:12]}… not at site {self.site!r}")
        if chunk_id(data) != cid:
            raise StorageError(f"chunk {cid[:12]}… corrupt at site {self.site!r}")
        return data

    def has(self, cid: str) -> bool:
        if self._failed:
            return False
        with self._lock:
            return cid in self._chunks

    def release(self, cid: str) -> None:
        """Drop one reference; frees the chunk at zero."""
        self._check_up()
        with self._lock:
            count = self._refcounts.get(cid)
            if count is None:
                return
            if count <= 1:
                del self._refcounts[cid]
                del self._chunks[cid]
            else:
                self._refcounts[cid] = count - 1

    def chunk_count(self) -> int:
        with self._lock:
            return len(self._chunks)

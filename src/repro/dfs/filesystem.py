"""The user-facing grid file system.

Files are split into fixed-size chunks, each replicated on
``replication`` distinct *sites* (never twice on one site), so the loss
of any single site leaves every chunk readable — the availability story
the paper's distributed-control argument extends to storage.  Reads
prefer a replica at the caller's own site, mirroring the proxy
architecture's locality principle: cross the site border only when you
must.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.dfs.metadata import FileEntry, Namespace, NamespaceError
from repro.dfs.storage import ChunkStore, StorageError

__all__ = ["DfsError", "GridFileSystem"]

_DEFAULT_CHUNK = 256 * 1024


class DfsError(Exception):
    """Write/read failure at the file level."""


class GridFileSystem:
    """Chunked, site-replicated grid storage."""

    def __init__(
        self,
        replication: int = 2,
        chunk_size: int = _DEFAULT_CHUNK,
        clock: Optional[Callable[[], float]] = None,
    ):
        if replication <= 0:
            raise DfsError(f"replication must be positive: {replication}")
        if chunk_size <= 0:
            raise DfsError(f"chunk size must be positive: {chunk_size}")
        self.replication = replication
        self.chunk_size = chunk_size
        self.clock = clock or (lambda: 0.0)
        self.namespace = Namespace()
        self._stores: dict[str, ChunkStore] = {}
        self._placement_cursor = 0
        self._lock = threading.Lock()
        #: read traffic accounting for the locality experiments
        self.local_chunk_reads = 0
        self.remote_chunk_reads = 0

    # -- membership -----------------------------------------------------------

    def add_site(self, site: str, capacity: int = 1 << 30) -> ChunkStore:
        with self._lock:
            if site in self._stores:
                raise DfsError(f"site already has a store: {site!r}")
            store = ChunkStore(site, capacity=capacity)
            self._stores[site] = store
            return store

    def sites(self) -> list[str]:
        with self._lock:
            return sorted(self._stores)

    def store_of(self, site: str) -> ChunkStore:
        with self._lock:
            try:
                return self._stores[site]
            except KeyError:
                raise DfsError(f"no store at site: {site!r}") from None

    # -- placement ----------------------------------------------------------------

    def _pick_sites(self, nbytes: int, preferred: Optional[str]) -> list[str]:
        """``replication`` distinct available sites with room, preferred
        site first (write locality), then round-robin for spread."""
        with self._lock:
            candidates = [
                site
                for site, store in self._stores.items()
                if store.available and store.free >= nbytes
            ]
            if len(candidates) < self.replication:
                raise DfsError(
                    f"need {self.replication} sites with {nbytes} B free, "
                    f"only {len(candidates)} available"
                )
            ordered = sorted(candidates)
            # Rotate for even spread across writes.
            start = self._placement_cursor % len(ordered)
            self._placement_cursor += 1
            rotation = ordered[start:] + ordered[:start]
            if preferred in rotation:
                rotation.remove(preferred)
                rotation.insert(0, preferred)
            return rotation[: self.replication]

    # -- file operations -----------------------------------------------------------

    def write(
        self, path: str, data: bytes, site: Optional[str] = None
    ) -> FileEntry:
        """Store a file, replicating every chunk on ``replication`` sites."""
        if self.namespace.exists(path):
            raise DfsError(f"path exists: {path!r}")
        entry = FileEntry(
            path=path,
            size=len(data),
            chunk_size=self.chunk_size,
            created_at=self.clock(),
        )
        written: list[tuple[str, str]] = []  # (site, cid) for rollback
        try:
            for index, offset in enumerate(
                range(0, max(len(data), 1), self.chunk_size)
            ):
                chunk = data[offset : offset + self.chunk_size]
                targets = self._pick_sites(len(chunk), preferred=site)
                cid = None
                for target in targets:
                    cid = self.store_of(target).put(chunk)
                    written.append((target, cid))
                assert cid is not None
                entry.chunks.append(cid)
                entry.replicas[index] = targets
            self.namespace.create(entry)
        except (StorageError, NamespaceError, DfsError):
            for target, cid in written:
                try:
                    self.store_of(target).release(cid)
                except StorageError:
                    pass
            raise
        return entry

    def read(self, path: str, site: Optional[str] = None) -> bytes:
        """Reassemble a file, preferring replicas at ``site``."""
        entry = self.namespace.get(path)
        parts = []
        for index, cid in enumerate(entry.chunks):
            parts.append(self._read_chunk(entry, index, cid, site))
        data = b"".join(parts)
        if len(data) != entry.size:
            raise DfsError(
                f"{path!r}: reassembled {len(data)} B, expected {entry.size}"
            )
        return data

    def _read_chunk(
        self, entry: FileEntry, index: int, cid: str, site: Optional[str]
    ) -> bytes:
        holders = entry.sites_for(index)
        ordered = holders
        if site in holders:
            ordered = [site] + [h for h in holders if h != site]
        last_error: Optional[Exception] = None
        for holder in ordered:
            store = self.store_of(holder)
            if not store.available:
                continue
            try:
                chunk = store.get(cid)
            except StorageError as exc:
                last_error = exc
                continue
            if site is not None and holder == site:
                self.local_chunk_reads += 1
            else:
                self.remote_chunk_reads += 1
            return chunk
        raise DfsError(
            f"chunk {cid[:12]}… of {entry.path!r} unavailable "
            f"(replicas at {holders}): {last_error}"
        )

    def delete(self, path: str) -> None:
        entry = self.namespace.remove(path)
        for index, cid in enumerate(entry.chunks):
            for holder in entry.sites_for(index):
                try:
                    self.store_of(holder).release(cid)
                except (StorageError, DfsError):
                    pass  # a downed site cannot release; acceptable leak

    def stat(self, path: str) -> FileEntry:
        return self.namespace.get(path)

    def ls(self, prefix: str = "/") -> list[str]:
        return self.namespace.list(prefix)

    # -- maintenance ------------------------------------------------------------------

    def re_replicate(self, failed_site: str) -> int:
        """Restore replication for chunks that lost a copy on a dead site.

        Returns the number of chunk replicas recreated.  The surviving
        copy is read from any live holder and written to a fresh site.
        """
        recreated = 0
        for path in self.ls("/"):
            entry = self.namespace.get(path)
            for index, cid in enumerate(entry.chunks):
                holders = entry.sites_for(index)
                if failed_site not in holders:
                    continue
                survivors = [
                    h
                    for h in holders
                    if h != failed_site and self.store_of(h).available
                ]
                if not survivors:
                    raise DfsError(
                        f"chunk {cid[:12]}… of {path!r} lost all replicas"
                    )
                chunk = self.store_of(survivors[0]).get(cid)
                with self._lock:
                    fresh = [
                        site
                        for site, store in self._stores.items()
                        if site not in holders
                        and store.available
                        and store.free >= len(chunk)
                    ]
                if not fresh:
                    raise DfsError(f"no site available to re-replicate {cid[:12]}…")
                target = sorted(fresh)[0]
                self.store_of(target).put(chunk)
                entry.replicas[index] = survivors + [target]
                recreated += 1
        return recreated

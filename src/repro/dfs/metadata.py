"""The DFS namespace: paths, chunk maps and replica locations."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["FileEntry", "Namespace", "NamespaceError"]


class NamespaceError(Exception):
    """Unknown path, duplicate path, or malformed name."""


@dataclass
class FileEntry:
    """Metadata for one file."""

    path: str
    size: int
    chunk_size: int
    #: ordered chunk ids reassembling the file
    chunks: list[str] = field(default_factory=list)
    #: chunk index -> sites holding a replica (indexed, not cid-keyed:
    #: a file may contain identical chunks placed on different sites)
    replicas: dict[int, list[str]] = field(default_factory=dict)
    created_at: float = 0.0

    @property
    def chunk_count(self) -> int:
        return len(self.chunks)

    def sites_for(self, index: int) -> list[str]:
        return list(self.replicas.get(index, []))


def _validate_path(path: str) -> str:
    if not path or not path.startswith("/"):
        raise NamespaceError(f"paths must be absolute: {path!r}")
    if "//" in path or path != path.rstrip("/") and path != "/":
        raise NamespaceError(f"malformed path: {path!r}")
    return path


class Namespace:
    """Thread-safe path → entry map with directory-style listing."""

    def __init__(self):
        self._entries: dict[str, FileEntry] = {}
        self._lock = threading.Lock()

    def create(self, entry: FileEntry) -> None:
        _validate_path(entry.path)
        with self._lock:
            if entry.path in self._entries:
                raise NamespaceError(f"path exists: {entry.path!r}")
            self._entries[entry.path] = entry

    def get(self, path: str) -> FileEntry:
        with self._lock:
            try:
                return self._entries[path]
            except KeyError:
                raise NamespaceError(f"no such file: {path!r}") from None

    def exists(self, path: str) -> bool:
        with self._lock:
            return path in self._entries

    def remove(self, path: str) -> FileEntry:
        with self._lock:
            try:
                return self._entries.pop(path)
            except KeyError:
                raise NamespaceError(f"no such file: {path!r}") from None

    def list(self, prefix: str = "/") -> list[str]:
        """Paths under a prefix, sorted."""
        _validate_path(prefix)
        if not prefix.endswith("/"):
            prefix = prefix + "/"
        with self._lock:
            return sorted(
                path
                for path in self._entries
                if path.startswith(prefix) or path == prefix.rstrip("/")
            )

    def total_bytes(self) -> int:
        with self._lock:
            return sum(e.size for e in self._entries.values())

    def file_count(self) -> int:
        with self._lock:
            return len(self._entries)

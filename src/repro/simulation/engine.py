"""Generator-based discrete-event simulation kernel.

The engine follows the classic process-interaction style: simulation
processes are Python generators that ``yield`` *events* (timeouts, other
processes, queue operations).  The :class:`Simulator` owns a priority queue
of scheduled events and advances virtual time from one event to the next, so
a run over hours of simulated traffic completes in milliseconds of wall time
and is fully deterministic for a fixed seed.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(worker(sim, "a", 2.0))
>>> _ = sim.spawn(worker(sim, "b", 1.0))
>>> sim.run()
2.0
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "Queue",
    "SimulationError",
    "Simulator",
    "Timeout",
]


class SimulationError(Exception):
    """Raised for kernel-level misuse (running a finished simulator, etc.)."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupting party supplies a ``cause`` which the interrupted
    process can inspect, e.g. a failure-injection record.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it is *triggered* exactly once with a value
    (:meth:`succeed`) or an exception (:meth:`fail`).  Processes that yield a
    pending event are resumed when it triggers.
    """

    __slots__ = ("sim", "_value", "_exception", "_triggered", "_waiters", "callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._waiters: list["Process"] = []
        #: plain callables invoked with the event when it triggers
        self.callbacks: list[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True when the event triggered successfully."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule_trigger(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, re-raised in each waiter."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._triggered = True
        self._exception = exception
        self.sim._schedule_trigger(self)
        return self

    def _add_waiter(self, process: "Process") -> None:
        if self._triggered:
            # Late subscriber: resume on the next kernel step.
            self.sim._schedule_resume(process, self)
        else:
            self._waiters.append(process)


class Timeout(Event):
    """Event that triggers after a fixed delay of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        sim._schedule_at(sim.now + delay, self)  # dispatcher triggers it at fire time


class Process(Event):
    """A running simulation process wrapping a generator.

    A process is itself an event: it triggers when the generator returns
    (value = the ``return`` value) or raises (exception propagated to
    waiters).  Use :meth:`interrupt` to inject an :class:`Interrupt` into
    the process at its current wait point.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_alive")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(f"process body must be a generator, got {type(generator)!r}")
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        self._alive = True
        sim._schedule_resume(self, None)

    @property
    def alive(self) -> bool:
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self._alive:
            return
        target = self._waiting_on
        if target is not None and self in target._waiters:
            target._waiters.remove(self)
        self._waiting_on = None
        self.sim._schedule_throw(self, Interrupt(cause))

    # -- kernel steps ----------------------------------------------------

    def _step(self, trigger: Optional[Event]) -> None:
        self._waiting_on = None
        try:
            if trigger is None:
                yielded = self.generator.send(None)
            elif trigger._exception is not None:
                yielded = self.generator.throw(trigger._exception)
            else:
                yielded = self.generator.send(trigger._value)
        except StopIteration as stop:
            self._finish(value=stop.value)
            return
        except BaseException as exc:  # generator died
            self._finish(exception=exc)
            return
        self._wait_on(yielded)

    def _throw(self, exc: BaseException) -> None:
        try:
            yielded = self.generator.throw(exc)
        except StopIteration as stop:
            self._finish(value=stop.value)
            return
        except BaseException as err:
            self._finish(exception=err)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if not isinstance(yielded, Event):
            self._finish(
                exception=SimulationError(
                    f"process {self.name!r} yielded non-event {yielded!r}"
                )
            )
            return
        if yielded.sim is not self.sim:
            self._finish(
                exception=SimulationError(
                    f"process {self.name!r} yielded event from another simulator"
                )
            )
            return
        self._waiting_on = yielded
        yielded._add_waiter(self)

    def _finish(self, value: Any = None, exception: Optional[BaseException] = None) -> None:
        self._alive = False
        if self._triggered:
            return
        self._triggered = True
        if exception is not None:
            self._exception = exception
            if not self._waiters and not self.callbacks:
                # Nobody is listening: surface the crash instead of
                # swallowing it silently.
                raise exception
        else:
            self._value = value
        self.sim._schedule_trigger(self)


class AnyOf(Event):
    """Composite event triggering when the first of its children triggers."""

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf needs at least one event")
        for event in self.events:
            if event._triggered:
                self._on_child(event)
                break
            event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed((event, event._value))


class AllOf(Event):
    """Composite event triggering when all of its children have triggered."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = 0
        for event in self.events:
            if not event._triggered:
                self._remaining += 1
                event.callbacks.append(self._on_child)
        if self._remaining == 0:
            self.succeed([e._value for e in self.events])

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self.events])


class Queue:
    """Unbounded FIFO queue for inter-process messaging.

    ``put`` never blocks; ``get`` returns an event that triggers with the
    next item (immediately when one is buffered).
    """

    def __init__(self, sim: "Simulator", name: str = "queue"):
        self.sim = sim
        self.name = name
        self._items: deque = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if not getter._triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class Simulator:
    """The discrete-event kernel: virtual clock plus scheduled-event heap."""

    def __init__(self):
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = itertools.count()
        self._throws: list[tuple[float, int, Process, BaseException]] = []
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time (seconds by convention)."""
        return self._now

    # -- public construction helpers -------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Create a process from a generator and schedule its first step."""
        return Process(self, generator, name=name)

    def queue(self, name: str = "queue") -> Queue:
        return Queue(self, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling internals ---------------------------------------------

    def _schedule_at(self, when: float, event: Event) -> None:
        heapq.heappush(self._heap, (when, next(self._sequence), event))

    def _schedule_trigger(self, event: Event) -> None:
        self._schedule_at(self._now, event)

    def _schedule_resume(self, process: Process, trigger: Optional[Event]) -> None:
        marker = _Resume(self, process, trigger)
        self._schedule_at(self._now, marker)

    def _schedule_throw(self, process: Process, exc: BaseException) -> None:
        marker = _Throw(self, process, exc)
        self._schedule_at(self._now, marker)

    # -- main loop ----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event heap drains or simulated time passes ``until``.

        Returns the simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            while self._heap:
                when, _seq, event = self._heap[0]
                if until is not None and when > until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                self._now = when
                self._dispatch(event)
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def _dispatch(self, event: Event) -> None:
        if isinstance(event, _Resume):
            process = event.process
            if process._alive:
                process._step(event.trigger)
            return
        if isinstance(event, _Throw):
            process = event.process
            if process._alive:
                process._throw(event.exception)
            return
        # A real event fired: notify waiters and callbacks.
        event._triggered = True  # no-op for events triggered via succeed/fail
        waiters, event._waiters = event._waiters, []
        for process in waiters:
            if process._alive:
                self._schedule_resume(process, event)
        callbacks, event.callbacks = list(event.callbacks), []
        for callback in callbacks:
            callback(event)


class _Resume(Event):
    """Internal marker scheduling a process continuation."""

    __slots__ = ("process", "trigger")

    def __init__(self, sim: Simulator, process: Process, trigger: Optional[Event]):
        # Bypass Event.__init__ bookkeeping: markers are never waited on.
        self.sim = sim
        self.process = process
        self.trigger = trigger
        self._value = None
        self._exception = None
        self._triggered = True
        self._waiters = []
        self.callbacks = []


class _Throw(Event):
    """Internal marker scheduling an exception injection."""

    __slots__ = ("process", "exception")

    def __init__(self, sim: Simulator, process: Process, exception: BaseException):
        self.sim = sim
        self.process = process
        self.exception = exception
        self._value = None
        self._exception = None
        self._triggered = True
        self._waiters = []
        self.callbacks = []

"""Node resource models: CPU, RAM, disk and owner-priority scheduling.

The paper lists among its requirements that "the priority of the resource's
utilization [belongs to] the user of the machine and not [to] third party
applications": grid work on a workstation must yield to the owner's own
activity.  :class:`NodeResources` models a single node with a CPU of a given
speed whose capacity is time-shared between the owner's foreground activity
(which always wins) and grid jobs (which absorb only the leftover cycles).

The model is analytic rather than instruction-level: a grid task of ``work``
CPU-seconds on an idle node of speed ``s`` takes ``work / s`` simulated
seconds; when the owner consumes a duty-cycle fraction ``d``, the grid task
slows to ``work / (s * (1 - d))``.  That is exactly the first-order effect
the paper's requirement is about, and it is what experiment E12 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.simulation.engine import Event, Simulator
from repro.simulation.randomness import RandomStream

__all__ = ["NodeResources", "OwnerActivity", "ResourceSnapshot"]


@dataclass(frozen=True)
class ResourceSnapshot:
    """Point-in-time availability of a station, as the Grid API reports it.

    Mirrors the paper's Grid API layer, which "contains grid manipulation
    functions, returning, for instance, the state of a station (availability
    of RAM memory, CPU and HD)".
    """

    node: str
    time: float
    cpu_speed: float  # relative speed units (1.0 = reference node)
    cpu_available: float  # fraction of CPU free for grid work, 0..1
    ram_total: int  # bytes
    ram_available: int  # bytes
    disk_total: int  # bytes
    disk_available: int  # bytes
    running_jobs: int

    @property
    def effective_speed(self) -> float:
        """Speed a new grid job would see right now."""
        return self.cpu_speed * self.cpu_available


class OwnerActivity:
    """Stochastic foreground load from the machine's owner.

    Alternates between idle and busy periods with exponential durations.
    During busy periods the owner consumes ``busy_fraction`` of the CPU,
    which grid jobs must not touch.
    """

    def __init__(
        self,
        rng: RandomStream,
        mean_idle: float = 300.0,
        mean_busy: float = 60.0,
        busy_fraction: float = 0.8,
    ):
        if not 0.0 <= busy_fraction <= 1.0:
            raise ValueError(f"busy fraction out of range: {busy_fraction}")
        self.rng = rng
        self.mean_idle = mean_idle
        self.mean_busy = mean_busy
        self.busy_fraction = busy_fraction

    def duty_cycle(self) -> float:
        """Long-run fraction of time the owner is busy."""
        total = self.mean_idle + self.mean_busy
        return self.mean_busy / total if total > 0 else 0.0

    def run(self, node: "NodeResources") -> Generator:
        """Simulation process toggling the node's owner load forever."""
        sim = node.sim
        while True:
            yield sim.timeout(self.rng.exponential(self.mean_idle))
            node.set_owner_load(self.busy_fraction)
            yield sim.timeout(self.rng.exponential(self.mean_busy))
            node.set_owner_load(0.0)


class NodeResources:
    """CPU/RAM/disk of one grid node, with owner-priority time sharing.

    Grid jobs execute through :meth:`execute`, a generator that completes
    after the job's CPU work has been absorbed at whatever rate the owner
    leaves available.  Changing the owner load mid-job re-times every
    running job, implementing strict owner priority.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cpu_speed: float = 1.0,
        ram_total: int = 1 << 30,
        disk_total: int = 40 << 30,
    ):
        if cpu_speed <= 0:
            raise ValueError(f"cpu speed must be positive: {cpu_speed}")
        self.sim = sim
        self.name = name
        self.cpu_speed = cpu_speed
        self.ram_total = ram_total
        self.disk_total = disk_total
        self.ram_used = 0
        self.disk_used = 0
        self.owner_load = 0.0
        self._jobs: dict[int, _RunningJob] = {}
        self._job_ids = 0
        self.jobs_completed = 0

    # -- owner priority ------------------------------------------------------

    def set_owner_load(self, fraction: float) -> None:
        """Set the owner's CPU share; re-times all running grid jobs."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"owner load out of range: {fraction}")
        self._absorb_progress()
        self.owner_load = fraction
        self._retime_jobs()

    def grid_rate(self) -> float:
        """CPU-work units per second available to grid jobs *in total*.

        Running jobs share this rate equally (processor sharing).
        """
        return self.cpu_speed * (1.0 - self.owner_load)

    def _per_job_rate(self) -> float:
        n = len(self._jobs)
        if n == 0:
            return self.grid_rate()
        return self.grid_rate() / n

    def _absorb_progress(self) -> None:
        """Credit each running job with work done since its last update."""
        now = self.sim.now
        rate = self._per_job_rate()
        for job in self._jobs.values():
            elapsed = now - job.last_update
            job.remaining = max(0.0, job.remaining - elapsed * rate)
            job.last_update = now

    def _retime_jobs(self) -> None:
        """Reschedule every job's completion for the new sharing rate."""
        rate = self._per_job_rate()
        for job in self._jobs.values():
            job.generation += 1
            if rate <= 0:
                continue  # stalled until owner releases the CPU
            self._schedule_completion(job, job.remaining / rate)

    def _schedule_completion(self, job: "_RunningJob", delay: float) -> None:
        generation = job.generation
        timer = self.sim.timeout(delay)

        def fire(_event: Event) -> None:
            if job.job_id in self._jobs and job.generation == generation:
                self._absorb_progress()
                self._complete(job)

        timer.callbacks.append(fire)

    def _complete(self, job: "_RunningJob") -> None:
        del self._jobs[job.job_id]
        self.ram_used -= job.ram
        self.jobs_completed += 1
        job.done.succeed(self.sim.now - job.started_at)
        # Remaining jobs now get a larger share.
        self._absorb_progress()
        self._retime_jobs()

    # -- job execution ---------------------------------------------------------

    def submit(self, cpu_work: float, ram: int = 0) -> Event:
        """Start a grid job; returns an event triggering with its runtime.

        ``cpu_work`` is in CPU-seconds on a reference (speed 1.0) node.
        """
        if cpu_work < 0:
            raise ValueError(f"negative cpu work: {cpu_work}")
        if ram < 0:
            raise ValueError(f"negative ram: {ram}")
        if self.ram_used + ram > self.ram_total:
            raise MemoryError(
                f"node {self.name!r}: {ram} B requested, "
                f"{self.ram_total - self.ram_used} B free"
            )
        self._absorb_progress()
        self._job_ids += 1
        job = _RunningJob(
            job_id=self._job_ids,
            remaining=cpu_work,
            ram=ram,
            started_at=self.sim.now,
            last_update=self.sim.now,
            done=self.sim.event(),
        )
        self.ram_used += ram
        self._jobs[job.job_id] = job
        self._retime_jobs()
        if cpu_work == 0:
            # _retime_jobs scheduled an immediate completion; nothing else to do.
            pass
        return job.done

    def execute(self, cpu_work: float, ram: int = 0) -> Generator:
        """Generator form of :meth:`submit` for use inside processes."""
        runtime = yield self.submit(cpu_work, ram=ram)
        return runtime

    # -- storage ---------------------------------------------------------------

    def allocate_disk(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if self.disk_used + nbytes > self.disk_total:
            raise OSError(
                f"node {self.name!r}: disk full "
                f"({self.disk_total - self.disk_used} B free)"
            )
        self.disk_used += nbytes

    def release_disk(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self.disk_used:
            raise ValueError(f"invalid release: {nbytes}")
        self.disk_used -= nbytes

    # -- introspection ------------------------------------------------------------

    @property
    def running_jobs(self) -> int:
        return len(self._jobs)

    def snapshot(self) -> ResourceSnapshot:
        """The station state that the Grid API layer reports."""
        return ResourceSnapshot(
            node=self.name,
            time=self.sim.now,
            cpu_speed=self.cpu_speed,
            cpu_available=max(0.0, 1.0 - self.owner_load)
            / (len(self._jobs) + 1),
            ram_total=self.ram_total,
            ram_available=self.ram_total - self.ram_used,
            disk_total=self.disk_total,
            disk_available=self.disk_total - self.disk_used,
            running_jobs=len(self._jobs),
        )


@dataclass
class _RunningJob:
    job_id: int
    remaining: float
    ram: int
    started_at: float
    last_update: float
    done: Event
    generation: int = 0

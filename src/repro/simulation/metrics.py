"""Measurement primitives shared by all experiments.

Every benchmark in :mod:`benchmarks` reports through a
:class:`MetricsRegistry` so the harness can print uniform tables of the
series the paper's claims are tested against (bytes on the WAN, crypto
operations, makespan, recovery time, ...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Counter", "Histogram", "MetricsRegistry", "TimeSeries"]


class Counter:
    """Monotonic counter (events, bytes, operations)."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Streaming histogram: keeps every observation for exact quantiles.

    Experiment populations are small enough (≤ millions of samples) that
    exact quantiles are affordable and simpler than sketches.
    """

    def __init__(self, name: str):
        self.name = name
        self._samples: list[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        self._samples.append(value)
        self._sorted = False

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return sum(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    @property
    def minimum(self) -> float:
        return min(self._samples) if self._samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self._samples) if self._samples else 0.0

    @property
    def stddev(self) -> float:
        n = len(self._samples)
        if n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(sum((x - mean) ** 2 for x in self._samples) / (n - 1))

    def quantile(self, q: float) -> float:
        """Exact quantile by linear interpolation, q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if not self._samples:
            return 0.0
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        idx = q * (len(self._samples) - 1)
        lo = int(math.floor(idx))
        hi = int(math.ceil(idx))
        if lo == hi:
            return self._samples[lo]
        frac = idx - lo
        return self._samples[lo] * (1 - frac) + self._samples[hi] * frac

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "min": self.minimum,
            "max": self.maximum,
        }


class TimeSeries:
    """(time, value) samples, e.g. utilisation or queue depth over a run."""

    def __init__(self, name: str):
        self.name = name
        self.points: list[tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        if self.points and time < self.points[-1][0]:
            raise ValueError(f"time went backwards in series {self.name!r}")
        self.points.append((time, value))

    def __len__(self) -> int:
        return len(self.points)

    def last(self) -> Optional[tuple[float, float]]:
        return self.points[-1] if self.points else None

    def time_weighted_mean(self) -> float:
        """Average of the series weighted by how long each value held."""
        if len(self.points) < 2:
            return self.points[0][1] if self.points else 0.0
        area = 0.0
        for (t0, v0), (t1, _v1) in zip(self.points, self.points[1:]):
            area += v0 * (t1 - t0)
        span = self.points[-1][0] - self.points[0][0]
        return area / span if span > 0 else self.points[-1][1]

    def values(self) -> list[float]:
        return [v for _, v in self.points]


@dataclass
class MetricsRegistry:
    """Namespace of metrics for one experiment run."""

    name: str = "metrics"
    counters: dict[str, Counter] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    series: dict[str, TimeSeries] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    def timeseries(self, name: str) -> TimeSeries:
        if name not in self.series:
            self.series[name] = TimeSeries(name)
        return self.series[name]

    def snapshot(self) -> dict[str, Any]:
        """Flat dict of every metric, for report printing."""
        out: dict[str, Any] = {}
        for name, counter in sorted(self.counters.items()):
            out[name] = counter.value
        for name, histogram in sorted(self.histograms.items()):
            for key, value in histogram.summary().items():
                out[f"{name}.{key}"] = value
        for name, series in sorted(self.series.items()):
            out[f"{name}.twmean"] = series.time_weighted_mean()
        return out

    def reset(self) -> None:
        self.counters.clear()
        self.histograms.clear()
        self.series.clear()

"""Seeded random streams for deterministic experiments.

Every experiment draws from named :class:`RandomStream` instances so that the
same seed reproduces the same workload exactly, independent of how other
components consume randomness.  Streams are derived from a root seed and a
label, so adding a new consumer never perturbs existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

__all__ = ["RandomStream", "derive_seed"]

T = TypeVar("T")


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a child seed from a root seed and a stable label.

    Uses SHA-256 over ``root_seed || label`` so child streams are
    statistically independent and insensitive to creation order.
    """
    digest = hashlib.sha256(f"{root_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStream:
    """A named, independently seeded source of random draws."""

    def __init__(self, root_seed: int, label: str):
        self.root_seed = root_seed
        self.label = label
        self._rng = random.Random(derive_seed(root_seed, label))

    def child(self, label: str) -> "RandomStream":
        """Derive a sub-stream, e.g. per-site or per-node."""
        return RandomStream(derive_seed(self.root_seed, self.label), label)

    # -- basic draws -------------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, items: Sequence[T]) -> T:
        return self._rng.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        return self._rng.sample(items, k)

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def bytes(self, n: int) -> bytes:
        return self._rng.randbytes(n)

    # -- distributions used by the workload models --------------------------

    def exponential(self, mean: float) -> float:
        """Exponential inter-arrival times (Poisson arrivals)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self._rng.expovariate(1.0 / mean)

    def pareto(self, shape: float, minimum: float) -> float:
        """Heavy-tailed sizes (job durations, file sizes)."""
        if shape <= 0 or minimum <= 0:
            raise ValueError("pareto parameters must be positive")
        return minimum * self._rng.paretovariate(shape)

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._rng.lognormvariate(mu, sigma)

    def normal(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def bernoulli(self, p: float) -> bool:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability out of range: {p}")
        return self._rng.random() < p

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """Draw an index in [0, n) with Zipf popularity (0 most popular)."""
        if n <= 0:
            raise ValueError("n must be positive")
        weights = [1.0 / (i + 1) ** skew for i in range(n)]
        total = sum(weights)
        target = self._rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if target <= acc:
                return i
        return n - 1

    def weighted_choice(self, items: Sequence[T], weights: Iterable[float]) -> T:
        return self._rng.choices(list(items), weights=list(weights), k=1)[0]

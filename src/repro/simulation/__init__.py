"""Discrete-event simulation substrate.

The paper evaluated its proxy architecture on a real multi-site testbed
(clusters interconnected over a WAN).  This package provides the synthetic
equivalent: a deterministic discrete-event engine plus network, resource and
workload models that let the benchmark harness measure the architecture at
scales (dozens of sites, hundreds of nodes) that a single machine cannot host
as live processes.

Contents
--------
:mod:`repro.simulation.engine`
    Generator-based discrete-event kernel (simulator, processes, timeouts,
    queues, interrupts).
:mod:`repro.simulation.network`
    Link and topology models: LAN/WAN latency, bandwidth sharing, packet
    delivery between simulated hosts.
:mod:`repro.simulation.resources`
    Node resource models: CPU speed, RAM, disk, and the owner-priority
    background load required by the paper ("the priority of the resource's
    utilization by the user of the machine and not by third party
    applications").
:mod:`repro.simulation.metrics`
    Counters, timers, histograms and time-series used by every experiment.
:mod:`repro.simulation.randomness`
    Seeded random streams and the distributions used by workload generators.
"""

from repro.simulation.engine import (
    Event,
    Interrupt,
    Process,
    Queue,
    Simulator,
    Timeout,
)
from repro.simulation.metrics import Counter, Histogram, MetricsRegistry, TimeSeries
from repro.simulation.network import Host, Link, Network, Packet
from repro.simulation.randomness import RandomStream
from repro.simulation.resources import NodeResources, OwnerActivity, ResourceSnapshot

__all__ = [
    "Counter",
    "Event",
    "Histogram",
    "Host",
    "Interrupt",
    "Link",
    "MetricsRegistry",
    "Network",
    "NodeResources",
    "OwnerActivity",
    "Packet",
    "Process",
    "Queue",
    "RandomStream",
    "ResourceSnapshot",
    "Simulator",
    "TimeSeries",
    "Timeout",
]

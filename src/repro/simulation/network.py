"""Simulated network: hosts, links and packet delivery.

The model matches the paper's setting: each *site* is a LAN of nodes behind
a border proxy, and sites are interconnected by WAN links.  A link has a
propagation latency and a bandwidth; transmission time of a packet is
``latency + size / bandwidth`` with FIFO serialisation per link direction
(one packet at a time occupies the transmitter, later packets queue behind
it), which is the behaviour the overhead arguments in the paper depend on.

Hosts deliver packets to registered handlers (the middleware's channel
layer) or, by default, into an inbox queue that a simulation process can
drain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.simulation.engine import Queue, Simulator
from repro.simulation.metrics import MetricsRegistry

__all__ = ["Host", "Link", "LinkStats", "Network", "Packet", "LAN_PROFILE", "WAN_PROFILE"]

#: Typical 2003-era site LAN: 100 Mb/s switched Ethernet.
LAN_PROFILE = {"latency": 0.0002, "bandwidth": 12_500_000.0}  # 0.2 ms, 100 Mb/s
#: Typical 2003-era inter-site WAN path.
WAN_PROFILE = {"latency": 0.030, "bandwidth": 1_250_000.0}  # 30 ms, 10 Mb/s


@dataclass
class Packet:
    """A unit of traffic between two simulated hosts."""

    source: str
    destination: str
    size: int  # bytes on the wire
    payload: Any = None
    sent_at: float = 0.0
    hops: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"negative packet size: {self.size}")


@dataclass
class LinkStats:
    packets: int = 0
    bytes: int = 0
    busy_time: float = 0.0


class Link:
    """Unidirectional link with latency, bandwidth and FIFO serialisation."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        latency: float,
        bandwidth: float,
        loss_rate: float = 0.0,
    ):
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate out of range: {loss_rate}")
        self.sim = sim
        self.name = name
        self.latency = latency
        self.bandwidth = bandwidth
        self.loss_rate = loss_rate
        self.stats = LinkStats()
        #: time at which the transmitter frees up (FIFO serialisation)
        self._transmitter_free_at = 0.0
        #: optional deterministic drop predicate for failure injection
        self.drop_predicate: Optional[Callable[[Packet], bool]] = None

    def transmission_time(self, size: int) -> float:
        return size / self.bandwidth

    def send(self, packet: Packet, deliver: Callable[[Packet], None]) -> float:
        """Schedule delivery of ``packet``; returns the arrival time.

        ``deliver`` is invoked at arrival time.  Dropped packets return
        ``inf`` and never invoke ``deliver``.
        """
        sim = self.sim
        start = max(sim.now, self._transmitter_free_at)
        tx_time = self.transmission_time(packet.size)
        self._transmitter_free_at = start + tx_time
        self.stats.busy_time += tx_time
        if self.drop_predicate is not None and self.drop_predicate(packet):
            return float("inf")
        self.stats.packets += 1
        self.stats.bytes += packet.size
        arrival = start + tx_time + self.latency
        packet.hops += 1

        def fire(_event: Any) -> None:
            deliver(packet)

        timer = sim.timeout(arrival - sim.now)
        timer.callbacks.append(fire)
        return arrival

    def utilisation(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.stats.busy_time / elapsed)


class Host:
    """A network endpoint: a grid node, a proxy, or a service machine."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.inbox: Queue = sim.queue(name=f"{name}.inbox")
        self._handler: Optional[Callable[[Packet], None]] = None
        self.network: Optional["Network"] = None

    def on_packet(self, handler: Optional[Callable[[Packet], None]]) -> None:
        """Register a synchronous delivery handler (None → use the inbox)."""
        self._handler = handler

    def deliver(self, packet: Packet) -> None:
        if self._handler is not None:
            self._handler(packet)
        else:
            self.inbox.put(packet)

    def send(self, destination: str, size: int, payload: Any = None) -> float:
        """Send a packet via the attached network; returns arrival time."""
        if self.network is None:
            raise RuntimeError(f"host {self.name!r} is not attached to a network")
        packet = Packet(
            source=self.name,
            destination=destination,
            size=size,
            payload=payload,
            sent_at=self.sim.now,
        )
        return self.network.route(packet)


class Network:
    """Topology of hosts and directed links with static shortest-hop routing.

    Routing is precomputed with BFS over the link graph whenever the
    topology changes; the paper's topologies (sites behind proxies) are
    small and static, so recomputation cost is irrelevant.
    """

    def __init__(self, sim: Simulator, metrics: Optional[MetricsRegistry] = None):
        self.sim = sim
        self.metrics = metrics or MetricsRegistry("network")
        self._m_packets = self.metrics.counter("net.packets")
        self._m_bytes = self.metrics.counter("net.bytes")
        self.hosts: dict[str, Host] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self._next_hop: dict[tuple[str, str], str] = {}
        self._routes_dirty = False

    # -- topology construction ----------------------------------------------

    def add_host(self, name: str) -> Host:
        if name in self.hosts:
            raise ValueError(f"duplicate host name: {name!r}")
        host = Host(self.sim, name)
        host.network = self
        self.hosts[name] = host
        self._routes_dirty = True
        return host

    def remove_host(self, name: str) -> None:
        """Remove a host and its links (failure injection)."""
        if name not in self.hosts:
            raise KeyError(name)
        self.hosts[name].network = None
        del self.hosts[name]
        self._links = {
            (a, b): link for (a, b), link in self._links.items() if name not in (a, b)
        }
        self._routes_dirty = True

    def connect(
        self,
        a: str,
        b: str,
        latency: float,
        bandwidth: float,
        loss_rate: float = 0.0,
        bidirectional: bool = True,
    ) -> None:
        """Create link(s) between two existing hosts."""
        for endpoint in (a, b):
            if endpoint not in self.hosts:
                raise KeyError(f"unknown host: {endpoint!r}")
        self._links[(a, b)] = Link(
            self.sim, f"{a}->{b}", latency, bandwidth, loss_rate
        )
        if bidirectional:
            self._links[(b, a)] = Link(
                self.sim, f"{b}->{a}", latency, bandwidth, loss_rate
            )
        self._routes_dirty = True

    def disconnect(self, a: str, b: str) -> None:
        self._links.pop((a, b), None)
        self._links.pop((b, a), None)
        self._routes_dirty = True

    def link(self, a: str, b: str) -> Link:
        return self._links[(a, b)]

    def links(self) -> list[Link]:
        return list(self._links.values())

    # -- routing --------------------------------------------------------------

    def _rebuild_routes(self) -> None:
        """All-pairs next-hop via BFS from every host (hop-count metric)."""
        adjacency: dict[str, list[str]] = {name: [] for name in self.hosts}
        for (a, b) in self._links:
            if a in adjacency and b in self.hosts:
                adjacency[a].append(b)
        next_hop: dict[tuple[str, str], str] = {}
        for source in self.hosts:
            # BFS recording the first hop used to reach each destination.
            visited = {source}
            frontier = [(neigh, neigh) for neigh in adjacency[source]]
            for neigh, _ in frontier:
                visited.add(neigh)
            while frontier:
                new_frontier = []
                for node, first in frontier:
                    next_hop[(source, node)] = first
                    for neigh in adjacency[node]:
                        if neigh not in visited:
                            visited.add(neigh)
                            new_frontier.append((neigh, first))
                frontier = new_frontier
        self._next_hop = next_hop
        self._routes_dirty = False

    def reachable(self, a: str, b: str) -> bool:
        if self._routes_dirty:
            self._rebuild_routes()
        return a == b or (a, b) in self._next_hop

    def path(self, a: str, b: str) -> list[str]:
        """Hop-by-hop path from a to b, inclusive of both endpoints."""
        if self._routes_dirty:
            self._rebuild_routes()
        if a == b:
            return [a]
        hops = [a]
        current = a
        while current != b:
            try:
                current = self._next_hop[(current, b)]
            except KeyError:
                raise KeyError(f"no route from {a!r} to {b!r}") from None
            hops.append(current)
        return hops

    def route(self, packet: Packet) -> float:
        """Send a packet along the precomputed path; returns final arrival.

        Each hop is scheduled when the previous one delivers, so queueing on
        intermediate links is modelled naturally.
        """
        if self._routes_dirty:
            self._rebuild_routes()
        if packet.destination not in self.hosts:
            raise KeyError(f"unknown destination: {packet.destination!r}")
        self._m_packets.add()
        self._m_bytes.add(packet.size)
        return self._forward(packet, packet.source)

    def _forward(self, packet: Packet, current: str) -> float:
        if current == packet.destination:
            self.hosts[current].deliver(packet)
            return self.sim.now
        try:
            hop = self._next_hop[(current, packet.destination)]
        except KeyError:
            raise KeyError(
                f"no route from {current!r} to {packet.destination!r}"
            ) from None
        link = self._links[(current, hop)]

        def on_hop(pkt: Packet) -> None:
            if self._routes_dirty:
                self._rebuild_routes()
            if pkt.destination not in self.hosts:
                return  # destination died in flight
            if hop == pkt.destination:
                self.hosts[hop].deliver(pkt)
            elif hop in self.hosts:
                self._forward(pkt, hop)

        return link.send(packet, on_hop)

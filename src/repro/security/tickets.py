"""Kerberos-style session tickets (the paper's named future work).

The paper notes its per-request authentication "does not cover all the
requirements and its replacement by a more efficient method has already
been foreseen … a recognized authentication standard such as Kerberos,
which requires a single authentication per session, with the access rights
stored safely in a ticket and reused transparently".

:class:`TicketService` implements that upgrade: a user authenticates once
(password or signature), receives a lifetime-bounded :class:`Ticket`
carrying their access rights, signed by the service; any proxy verifies
the ticket offline with the service's public key.  Experiment E8 measures
the resulting amortisation against per-request authentication.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.security.auth import UserDirectory
from repro.security.rsa import RsaKeyPair, RsaPublicKey
from repro.transport.frames import decode_value, encode_value

__all__ = ["Ticket", "TicketError", "TicketService"]

_DEFAULT_LIFETIME = 8 * 3600.0  # one working session


class TicketError(Exception):
    """Invalid, expired or tampered ticket."""


class Ticket:
    """A signed, lifetime-bounded assertion of identity and rights."""

    def __init__(
        self,
        userid: str,
        rights: list[str],
        issued_at: float,
        expires_at: float,
        issuer: str,
        payload: bytes,
        signature: bytes,
    ):
        self.userid = userid
        self.rights = rights
        self.issued_at = issued_at
        self.expires_at = expires_at
        self.issuer = issuer
        self._payload = payload
        self.signature = signature

    def to_bytes(self) -> bytes:
        return encode_value({"payload": self._payload, "signature": self.signature})

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Ticket":
        try:
            outer = decode_value(blob)
            fields = decode_value(outer["payload"])
            return cls(
                userid=fields["userid"],
                rights=list(fields["rights"]),
                issued_at=fields["issued_at"],
                expires_at=fields["expires_at"],
                issuer=fields["issuer"],
                payload=outer["payload"],
                signature=outer["signature"],
            )
        except Exception as exc:
            raise TicketError(f"malformed ticket: {exc}") from exc

    def grants(self, right: str) -> bool:
        return right in self.rights or "*" in self.rights


class TicketService:
    """Issues and verifies session tickets for the whole grid."""

    def __init__(
        self,
        directory: UserDirectory,
        clock: Callable[[], float],
        name: str = "grid-tgs",
        keypair: Optional[RsaKeyPair] = None,
        key_bits: int = 1024,
    ):
        self.directory = directory
        self.clock = clock
        self.name = name
        self.keypair = keypair or RsaKeyPair.generate(key_bits)
        self.issued_count = 0

    @property
    def public_key(self) -> RsaPublicKey:
        return self.keypair.public

    def issue(
        self,
        userid: str,
        password: str,
        rights: list[str],
        lifetime: float = _DEFAULT_LIFETIME,
    ) -> Ticket:
        """Authenticate once and mint a ticket for the session."""
        if lifetime <= 0:
            raise ValueError(f"lifetime must be positive: {lifetime}")
        self.directory.authenticate_password(userid, password)  # may raise
        now = self.clock()
        payload = encode_value(
            {
                "userid": userid,
                "rights": list(rights),
                "issued_at": now,
                "expires_at": now + lifetime,
                "issuer": self.name,
            }
        )
        self.issued_count += 1
        return Ticket(
            userid=userid,
            rights=list(rights),
            issued_at=now,
            expires_at=now + lifetime,
            issuer=self.name,
            payload=payload,
            signature=self.keypair.sign(payload),
        )

    def verify(self, ticket: Ticket, required_right: Optional[str] = None) -> None:
        """Offline verification any proxy can perform."""
        self.verify_with_key(ticket, self.public_key, self.clock(), required_right)

    @staticmethod
    def verify_with_key(
        ticket: Ticket,
        service_key: RsaPublicKey,
        now: float,
        required_right: Optional[str] = None,
    ) -> None:
        """Verify a ticket given only the service's public key and a clock."""
        if not service_key.verify(ticket._payload, ticket.signature):
            raise TicketError(f"ticket signature invalid (user {ticket.userid!r})")
        if now > ticket.expires_at:
            raise TicketError(f"ticket expired (user {ticket.userid!r})")
        if now < ticket.issued_at - 60.0:
            raise TicketError("ticket issued in the future")
        if required_right is not None and not ticket.grants(required_right):
            raise TicketError(
                f"ticket for {ticket.userid!r} lacks right {required_right!r}"
            )


def per_request_auth_cost(
    directory: UserDirectory, userid: str, password: str, requests: int
) -> int:
    """Reference helper for E8: authenticate every request individually.

    Returns the number of password verifications performed (== requests).
    """
    for _ in range(requests):
        directory.authenticate_password(userid, password)
    return requests

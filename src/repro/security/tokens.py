"""Token-based auth control plane: login once, HMAC per request.

The seed architecture verified an RSA signature on every authenticated
request — correct, but three orders of magnitude too slow for the
"millions of users" target (see ROADMAP item 1 and DESIGN.md §14).
This module refactors that path into the shape DIRAC grew into with
diracx, and the paper names as future work ("Kerberos-style tickets"):

* ``TokenService.login`` — authenticate **once** (password or RSA
  signature) and mint a short-lived bearer :class:`Token` carrying
  userid, groups, scopes, and expiry, signed with HMAC-SHA256 under a
  symmetric key shared by the proxies.  Per-request verification is one
  HMAC plus a revocation-epoch compare.
* ``TokenService.refresh`` — trade a live token for a fresh one, so
  short lifetimes don't force users back through PBKDF2.
* ``TokenService.revoke`` / ``revoke_user`` — a grow-only
  :class:`RevocationList` with a monotonic epoch; proxies piggyback the
  epoch on heartbeats and anti-entropy-pull the list when they see a
  newer one (core/proxy.py), so a revocation converges grid-wide within
  one heartbeat round.
* ``TokenService.delegate`` — bounded delegation chains ("Proxy dynamic
  delegation in grid gateway", PAPERS.md): a proxy holding a user's
  token mints an **attenuated** token (scopes ⊆ parent, expiry ≤
  parent, depth-bounded) to act on the user's behalf at the
  destination site.

Trust model: proxies are the trusted computing base (they already
terminate the secure tunnels and see plaintext), so a symmetric
grid-wide token key — distributed by :class:`~repro.core.grid.Grid`
over the same channel as certificates — is sound; users never hold the
key, only tokens.

``REPRO_AUTH=legacy`` disables the token plane (see :func:`auth_mode`):
enablement becomes a no-op and the per-request signature path keeps
working byte-identically.
"""

from __future__ import annotations

import hmac
import os
import secrets
import threading
from hashlib import sha256
from typing import Callable, Iterable, Optional

from repro.obs.racesan import shared_state
from repro.security.auth import UserDirectory
from repro.transport.frames import decode_value, encode_value

__all__ = [
    "AUTH_MODES",
    "DEFAULT_TOKEN_LIFETIME",
    "MAX_DELEGATION_DEPTH",
    "RevocationList",
    "Token",
    "TokenError",
    "TokenService",
    "auth_mode",
    "scope_grants",
]

Clock = Callable[[], float]

#: Bearer tokens are short-lived by design; ``refresh`` is the cheap
#: path to stay logged in, and short lifetimes bound the damage window
#: of a leaked blob even before revocation propagates.
DEFAULT_TOKEN_LIFETIME = 900.0

#: Delegation chains are bounded: user → origin proxy → destination
#: proxy is depth 2; one spare hop covers proxy-of-proxies federation.
MAX_DELEGATION_DEPTH = 3

AUTH_MODES = ("token", "legacy")


def auth_mode() -> str:
    """Resolve ``REPRO_AUTH`` (default ``token``; unknown values too)."""
    mode = os.environ.get("REPRO_AUTH", "token").strip().lower()
    return mode if mode in AUTH_MODES else "token"


class TokenError(Exception):
    """A token failed verification, or a mint request was invalid."""


def scope_grants(granted: Iterable[str], required: str) -> bool:
    """Does any granted scope cover ``required``?

    Scopes are ``family:action`` strings.  ``*`` grants everything;
    ``family:*`` grants the whole family.  No other wildcarding — the
    grammar must stay cheap enough for the dispatch hot path.
    """
    for scope in granted:
        if scope == "*" or scope == required:
            return True
        if scope.endswith(":*") and required.startswith(scope[:-1]):
            return True
    return False


class Token:
    """A signed bearer token: claims payload + HMAC-SHA256 signature.

    The payload is a :func:`encode_value` dict (the same self-describing
    codec every frame uses), signed as opaque bytes — so the wire form
    is canonical and ``to_bytes``/``from_bytes`` round-trip exactly.
    ``chain`` records the delegation lineage: one ``{"by", "parent",
    "at"}`` dict per hop, newest last.
    """

    __slots__ = (
        "userid",
        "groups",
        "scopes",
        "issued_at",
        "expires_at",
        "issuer",
        "token_id",
        "chain",
        "_payload",
        "signature",
    )

    def __init__(
        self,
        userid: str,
        groups: tuple[str, ...],
        scopes: tuple[str, ...],
        issued_at: float,
        expires_at: float,
        issuer: str,
        token_id: str,
        chain: tuple[dict[str, object], ...],
        payload: bytes,
        signature: bytes,
    ) -> None:
        self.userid = userid
        self.groups = groups
        self.scopes = scopes
        self.issued_at = issued_at
        self.expires_at = expires_at
        self.issuer = issuer
        self.token_id = token_id
        self.chain = chain
        self._payload = payload
        self.signature = signature

    @classmethod
    def mint(
        cls,
        key: bytes,
        userid: str,
        groups: Iterable[str],
        scopes: Iterable[str],
        issued_at: float,
        expires_at: float,
        issuer: str,
        token_id: str,
        chain: Iterable[dict[str, object]] = (),
    ) -> "Token":
        payload = encode_value(
            {
                "uid": userid,
                "grp": sorted(groups),
                "scp": sorted(scopes),
                "iat": float(issued_at),
                "exp": float(expires_at),
                "iss": issuer,
                "tid": token_id,
                "chain": list(chain),
            }
        )
        signature = hmac.new(key, payload, sha256).digest()
        return cls(
            userid=userid,
            groups=tuple(sorted(groups)),
            scopes=tuple(sorted(scopes)),
            issued_at=float(issued_at),
            expires_at=float(expires_at),
            issuer=issuer,
            token_id=token_id,
            chain=tuple(dict(hop) for hop in chain),
            payload=payload,
            signature=signature,
        )

    def grants(self, required: str) -> bool:
        return scope_grants(self.scopes, required)

    @property
    def depth(self) -> int:
        return len(self.chain)

    def to_bytes(self) -> bytes:
        return encode_value({"p": self._payload, "s": self.signature})

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Token":
        try:
            outer = decode_value(blob)
            payload = outer["p"]
            signature = outer["s"]
            claims = decode_value(payload)
            chain = tuple(dict(hop) for hop in claims["chain"])
            return cls(
                userid=claims["uid"],
                groups=tuple(claims["grp"]),
                scopes=tuple(claims["scp"]),
                issued_at=float(claims["iat"]),
                expires_at=float(claims["exp"]),
                issuer=claims["iss"],
                token_id=claims["tid"],
                chain=chain,
                payload=payload,
                signature=signature,
            )
        except TokenError:
            raise
        except Exception as exc:
            raise TokenError(f"malformed token: {exc}") from exc

    def check_signature(self, key: bytes) -> None:
        expected = hmac.new(key, self._payload, sha256).digest()
        if not hmac.compare_digest(expected, self.signature):
            raise TokenError("token signature mismatch")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Token(userid={self.userid!r}, scopes={self.scopes!r}, "
            f"token_id={self.token_id!r}, depth={self.depth})"
        )


@shared_state
class RevocationList:
    """Grow-only revocation state with a monotonic gossip epoch.

    Two kinds of entries: individual token ids, and per-user cutoffs
    (``revoke_user`` invalidates every token the user was issued at or
    before the cutoff).  Both only grow, so merging replicas is a plain
    union — the classic grow-only-set CRDT — and convergence does not
    depend on delivery order.

    The ``epoch`` is the gossip trigger, not a version vector: any local
    mutation bumps it, heartbeats carry it, and a peer seeing a higher
    epoch pulls the full list.  ``merge`` bumps past both the local and
    remote epochs whenever it grows the set, so a replica holding the
    union is always strictly ahead of every peer it merged from and the
    union keeps propagating (concurrent revocations at equal or unequal
    epochs both converge).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = 0
        self._tokens: set[str] = set()
        self._users: dict[str, float] = {}

    @property
    def epoch(self) -> int:
        # Heartbeat threads read the epoch while gossip merges bump it;
        # the lock gives readers a published value, not a torn one.
        with self._lock:
            return self._epoch

    def revoke_token(self, token_id: str) -> bool:
        with self._lock:
            if token_id in self._tokens:
                return False
            self._tokens.add(token_id)
            self._epoch += 1
            return True

    def revoke_user(self, userid: str, cutoff: float) -> bool:
        with self._lock:
            current = self._users.get(userid)
            if current is not None and current >= cutoff:
                return False
            self._users[userid] = float(cutoff)
            self._epoch += 1
            return True

    def is_revoked(self, token: Token) -> bool:
        with self._lock:
            if token.token_id in self._tokens:
                return True
            cutoff = self._users.get(token.userid)
            return cutoff is not None and token.issued_at <= cutoff

    def to_wire(self) -> dict[str, object]:
        with self._lock:
            return {
                "epoch": self._epoch,
                "tokens": sorted(self._tokens),
                "users": dict(self._users),
            }

    def merge(self, wire: dict[str, object]) -> bool:
        """Union a peer's list into ours; True if anything changed."""
        try:
            remote_epoch = int(wire.get("epoch", 0))  # type: ignore[arg-type]
            tokens = wire.get("tokens", [])
            users = wire.get("users", {})
            if not isinstance(tokens, list) or not isinstance(users, dict):
                raise TypeError("bad rlist shape")
            user_cutoffs = {
                userid: float(cutoff)  # type: ignore[arg-type]
                for userid, cutoff in users.items()
                if isinstance(userid, str)
            }
        except Exception as exc:
            raise TokenError(f"malformed revocation list: {exc}") from exc
        with self._lock:
            grew = False
            for token_id in tokens:
                if isinstance(token_id, str) and token_id not in self._tokens:
                    self._tokens.add(token_id)
                    grew = True
            for userid, cutoff in user_cutoffs.items():
                current = self._users.get(userid)
                if current is None or current < cutoff:
                    self._users[userid] = cutoff
                    grew = True
            before = self._epoch
            self._epoch = max(self._epoch, remote_epoch)
            if grew:
                # Any merge that grows the set must end strictly ahead
                # of both our prior epoch and the peer's: peers pull
                # only on a strictly higher epoch, so landing exactly on
                # either value would strand the union (concurrent
                # revocations at equal epochs, a lower-epoch replica
                # holding unique entries merging a higher-epoch peer,
                # or vice versa).  Growth is idempotent, so equal sets
                # stop bumping and epochs converge.
                self._epoch += 1
            return grew or self._epoch != before


class TokenService:
    """Per-proxy token authority: mint, refresh, revoke, delegate, verify.

    Every proxy runs a replica sharing the same HMAC ``key`` and the
    same (already grid-shared) :class:`UserDirectory`, so a token minted
    at one site verifies at any other without a network hop.  State that
    must converge (the revocation list) is a CRDT gossiped by the
    proxies; everything else is stateless given the key.
    """

    def __init__(
        self,
        directory: UserDirectory,
        clock: Clock,
        *,
        key: Optional[bytes] = None,
        issuer: str = "grid",
        lifetime: float = DEFAULT_TOKEN_LIFETIME,
        max_delegation_depth: int = MAX_DELEGATION_DEPTH,
        user_scopes: Iterable[str] = ("jobs:submit", "wms:read"),
        max_clock_skew: float = 60.0,
    ) -> None:
        self.directory = directory
        self.clock = clock
        self.key = key if key is not None else secrets.token_bytes(32)
        if len(self.key) < 16:
            raise ValueError("token key must be at least 16 bytes")
        self.issuer = issuer
        self.lifetime = float(lifetime)
        self.max_delegation_depth = int(max_delegation_depth)
        self.user_scopes = tuple(user_scopes)
        self.max_clock_skew = float(max_clock_skew)
        self.revocations = RevocationList()
        self._group_scopes: dict[str, tuple[str, ...]] = {}
        self._seq_lock = threading.Lock()
        self._seq = 0

    # -- policy -----------------------------------------------------------

    def grant_group_scopes(self, group: str, scopes: Iterable[str]) -> None:
        """Extend the scopes minted into tokens of ``group`` members."""
        merged = set(self._group_scopes.get(group, ())) | set(scopes)
        self._group_scopes[group] = tuple(sorted(merged))

    def _scopes_for(self, userid: str, groups: Iterable[str]) -> tuple[str, ...]:
        scopes = set(self.user_scopes)
        for group in groups:
            scopes.update(self._group_scopes.get(group, ()))
        return tuple(sorted(scopes))

    def _next_token_id(self) -> str:
        with self._seq_lock:
            self._seq += 1
            seq = self._seq
        # Issuer name + per-issuer sequence + random suffix: unique
        # across replicas without coordination, stable enough to revoke.
        return f"{self.issuer}:{seq}:{secrets.token_hex(4)}"

    # -- minting ----------------------------------------------------------

    def _mint(
        self,
        userid: str,
        groups: Iterable[str],
        scopes: Iterable[str],
        lifetime: Optional[float],
        chain: Iterable[dict[str, object]] = (),
        expires_cap: Optional[float] = None,
    ) -> Token:
        now = self.clock()
        expires = now + (self.lifetime if lifetime is None else float(lifetime))
        if expires_cap is not None:
            expires = min(expires, expires_cap)
        return Token.mint(
            self.key,
            userid=userid,
            groups=groups,
            scopes=scopes,
            issued_at=now,
            expires_at=expires,
            issuer=self.issuer,
            token_id=self._next_token_id(),
            chain=chain,
        )

    def login(
        self,
        userid: str,
        password: str,
        *,
        scopes: Optional[Iterable[str]] = None,
        lifetime: Optional[float] = None,
    ) -> Token:
        """Password login: the one place a user pays the PBKDF2 cost."""
        self.directory.authenticate_password(userid, password)
        return self._login_common(userid, scopes, lifetime)

    def login_signature(
        self,
        userid: str,
        message: bytes,
        signature: bytes,
        *,
        scopes: Optional[Iterable[str]] = None,
        lifetime: Optional[float] = None,
    ) -> Token:
        """Signature login: the one place a user pays the RSA cost."""
        self.directory.verify_signature(userid, message, signature)
        return self._login_common(userid, scopes, lifetime)

    def _login_common(
        self,
        userid: str,
        scopes: Optional[Iterable[str]],
        lifetime: Optional[float],
    ) -> Token:
        groups = sorted(self.directory.groups_of(userid))
        granted = self._scopes_for(userid, groups)
        if scopes is not None:
            requested = tuple(sorted(set(scopes)))
            for scope in requested:
                if not scope_grants(granted, scope) and scope not in granted:
                    raise TokenError(
                        f"scope {scope!r} not grantable to {userid!r}"
                    )
            granted = requested
        return self._mint(userid, groups, granted, lifetime)

    def mint_service_token(
        self, subject: str, *, scopes: Iterable[str] = ("*",),
        lifetime: Optional[float] = None,
    ) -> Token:
        """Identity for grid infrastructure (proxies, shard workers).

        Proxies are the trusted base — they hold the HMAC key anyway —
        so a wildcard-scope token is a statement of identity for audit
        and uniform guard handling, not a privilege escalation.
        """
        return self._mint(subject, ("service",), scopes, lifetime)

    # -- lifecycle --------------------------------------------------------

    def refresh(self, blob: bytes) -> Token:
        """Trade a live token for a fresh one with the same claims.

        Delegated tokens are deliberately not refreshable: attenuation
        caps expiry at the parent's, and refresh must not re-open that
        window — the delegate asks the delegator again instead.
        """
        token = self.verify_blob(blob)
        if token.chain:
            raise TokenError("delegated tokens cannot be refreshed")
        return self._mint(token.userid, token.groups, token.scopes, None)

    def delegate(
        self,
        blob: bytes,
        *,
        delegate_to: str,
        scopes: Iterable[str],
        lifetime: Optional[float] = None,
    ) -> Token:
        """Mint an attenuated child token to act on the user's behalf.

        Attenuation is enforced, never trusted: requested scopes must be
        covered by the parent's, expiry is capped at the parent's, and
        the chain depth is bounded by ``max_delegation_depth``.
        """
        parent = self.verify_blob(blob)
        if parent.depth >= self.max_delegation_depth:
            raise TokenError(
                f"delegation depth {parent.depth} at bound "
                f"{self.max_delegation_depth}"
            )
        requested = tuple(sorted(set(scopes)))
        for scope in requested:
            if not scope_grants(parent.scopes, scope):
                raise TokenError(
                    f"cannot delegate scope {scope!r}: parent grants "
                    f"{list(parent.scopes)}"
                )
        hop: dict[str, object] = {
            "by": delegate_to,
            "parent": parent.token_id,
            "at": self.clock(),
        }
        return self._mint(
            parent.userid,
            parent.groups,
            requested,
            lifetime,
            chain=(*parent.chain, hop),
            expires_cap=parent.expires_at,
        )

    def revoke(self, token: "Token | bytes") -> bool:
        """Revoke one token (parsed leniently: expired blobs still revoke)."""
        if isinstance(token, (bytes, bytearray, memoryview)):
            token = Token.from_bytes(bytes(token))
        return self.revocations.revoke_token(token.token_id)

    def revoke_user(self, userid: str) -> bool:
        """Invalidate every token ``userid`` holds as of now."""
        return self.revocations.revoke_user(userid, self.clock())

    # -- verification (the hot path) --------------------------------------

    @property
    def epoch(self) -> int:
        return self.revocations.epoch

    def rlist_wire(self) -> dict[str, object]:
        return self.revocations.to_wire()

    def merge_rlist(self, wire: dict[str, object]) -> bool:
        return self.revocations.merge(wire)

    def verify_blob(
        self, blob: bytes, *, required_scope: Optional[str] = None
    ) -> Token:
        """Parse + verify a token blob; returns the claims on success.

        Cost: one decode, one HMAC, a set lookup, two float compares —
        no asymmetric crypto (gridlint GL105 pins this down for guards).
        """
        token = Token.from_bytes(blob)
        token.check_signature(self.key)
        self.check_claims(token, required_scope=required_scope)
        return token

    def check_claims(
        self, token: Token, *, required_scope: Optional[str] = None
    ) -> None:
        """Signature-independent claim checks (cache revalidation path)."""
        now = self.clock()
        if now > token.expires_at:
            raise TokenError(f"token {token.token_id} expired")
        if token.issued_at - now > self.max_clock_skew:
            raise TokenError(f"token {token.token_id} issued in the future")
        if token.depth > self.max_delegation_depth:
            raise TokenError(
                f"delegation chain of {token.depth} exceeds bound "
                f"{self.max_delegation_depth}"
            )
        if self.revocations.is_revoked(token):
            raise TokenError(f"token {token.token_id} is revoked")
        if required_scope is not None and not token.grants(required_scope):
            raise TokenError(
                f"token {token.token_id} lacks scope {required_scope!r}"
            )

"""Finite-field Diffie–Hellman key agreement.

Used by the SSL-like handshake to derive the tunnel's session keys with
forward secrecy (the alternative offered by the handshake is RSA key
transport; see :mod:`repro.security.handshake`).

The default group is the 2048-bit MODP group 14 from RFC 3526 — a
well-known safe prime, so there is no parameter-generation cost and no
possibility of a weak modulus sneaking in.
"""

from __future__ import annotations

import hashlib
import secrets

__all__ = ["DiffieHellman", "DhError", "MODP_2048", "MODP_GENERATOR"]

#: RFC 3526 group 14 prime (2048-bit MODP).
MODP_2048 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
MODP_GENERATOR = 2


class DhError(Exception):
    """Raised for out-of-range peer values (small-subgroup defence)."""


class DiffieHellman:
    """One party's ephemeral DH state.

    >>> alice, bob = DiffieHellman(), DiffieHellman()
    >>> alice.shared_secret(bob.public) == bob.shared_secret(alice.public)
    True
    """

    def __init__(self, prime: int = MODP_2048, generator: int = MODP_GENERATOR):
        if prime < 5:
            raise DhError(f"modulus too small: {prime}")
        self.prime = prime
        self.generator = generator
        # 256-bit exponents give ~128-bit security in a 2048-bit group.
        self._exponent = secrets.randbits(256) | 1
        self.public = pow(generator, self._exponent, prime)

    def shared_secret(self, peer_public: int) -> bytes:
        """Derive the 32-byte shared secret from the peer's public value."""
        if not 2 <= peer_public <= self.prime - 2:
            raise DhError("peer public value out of range")
        shared = pow(peer_public, self._exponent, self.prime)
        raw = shared.to_bytes((self.prime.bit_length() + 7) // 8, "big")
        return hashlib.sha256(raw).digest()

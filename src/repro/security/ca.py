"""The grid-wide Certification Authority.

The paper recommends "the creation of a Certification Authority (CA) for
the entire grid, providing greater autonomy for the creation and management
of certificates".  :class:`CertificationAuthority` issues, tracks and
revokes certificates; every proxy holds the CA's self-signed certificate
as its trust anchor.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.security.certs import Certificate, CertificateError
from repro.security.rsa import RsaKeyPair, RsaPublicKey

__all__ = ["CertificationAuthority"]

#: Ten years: the CA outlives every subject certificate.
_CA_LIFETIME = 10 * 365 * 24 * 3600.0
_DEFAULT_LIFETIME = 365 * 24 * 3600.0


class CertificationAuthority:
    """Issues certificates for proxies, nodes, users and services.

    ``clock`` is a zero-argument callable returning the current time; pass
    ``lambda: sim.now`` for simulated grids and ``time.time`` for live ones.
    """

    def __init__(
        self,
        name: str = "grid-ca",
        key_bits: int = 1024,
        clock: Callable[[], float] = None,
        keypair: Optional[RsaKeyPair] = None,
    ):
        self.name = name
        self.clock = clock or (lambda: 0.0)
        self.keypair = keypair or RsaKeyPair.generate(key_bits)
        self._serial = 0
        self._issued: dict[int, Certificate] = {}
        self._revoked: set[int] = set()
        self.certificate = self._self_sign()

    def _self_sign(self) -> Certificate:
        now = self.clock()
        self._serial += 1
        cert = Certificate(
            subject=self.name,
            role="ca",
            public_key=self.keypair.public,
            issuer=self.name,
            serial=self._serial,
            not_before=now,
            not_after=now + _CA_LIFETIME,
            signature=b"",
        )
        signed = Certificate(
            **{**cert.__dict__, "signature": self.keypair.sign(cert.tbs_bytes())}
        )
        self._issued[signed.serial] = signed
        return signed

    @property
    def public_key(self) -> RsaPublicKey:
        return self.keypair.public

    def issue(
        self,
        subject: str,
        role: str,
        public_key: RsaPublicKey,
        lifetime: float = _DEFAULT_LIFETIME,
    ) -> Certificate:
        """Issue a certificate binding ``subject`` to ``public_key``."""
        if lifetime <= 0:
            raise ValueError(f"lifetime must be positive: {lifetime}")
        if not subject:
            raise ValueError("empty subject")
        now = self.clock()
        self._serial += 1
        unsigned = Certificate(
            subject=subject,
            role=role,
            public_key=public_key,
            issuer=self.name,
            serial=self._serial,
            not_before=now,
            not_after=now + lifetime,
            signature=b"",
        )
        cert = Certificate(
            **{**unsigned.__dict__, "signature": self.keypair.sign(unsigned.tbs_bytes())}
        )
        self._issued[cert.serial] = cert
        return cert

    def revoke(self, serial: int) -> None:
        """Add a serial to the revocation list."""
        if serial not in self._issued:
            raise KeyError(f"unknown serial: {serial}")
        self._revoked.add(serial)

    def is_revoked(self, serial: int) -> bool:
        return serial in self._revoked

    def validate(
        self, cert: Certificate, expected_role: Optional[str] = None
    ) -> None:
        """Validate signature, validity window, role and revocation status."""
        cert.check(self.public_key, self.clock(), expected_role=expected_role)
        if cert.serial in self._revoked:
            raise CertificateError(
                f"certificate for {cert.subject!r}: revoked (serial {cert.serial})"
            )

    def issued_count(self) -> int:
        return len(self._issued)

"""SSL-like handshake establishing a secure channel between sites.

The paper tunnels inter-site traffic over SSL with mutual host
authentication via CA-issued certificates.  This module reproduces that
structure over any :class:`~repro.transport.channel.Channel`:

==========  =======================================================
Message     Content
==========  =======================================================
HELLO  →    client random, offered key-exchange modes
HELLO  ←    server random, chosen mode, server certificate,
            server DH public + signature over (randoms, DH public)
KEYEX  →    client certificate, client key-exchange payload
            (DH public, or pre-master secret encrypted to the
            server's RSA key), signature over the transcript
FINISH ←    HMAC over the transcript under the server write key
FINISH →    HMAC over the transcript under the client write key
==========  =======================================================

Two key-exchange modes, selectable per connection:

* ``"dh"``  — ephemeral Diffie–Hellman, forward secret (default);
* ``"rsa"`` — RSA key transport: client picks the pre-master secret and
  encrypts it to the server's certified key (cheaper for the client).

After FINISH verification both ends hold directional
:class:`~repro.security.cipher.RecordCipher` pairs, wrapped in a
:class:`SecureChannel` that seals *entire frames* (headers included) so
tunnel observers see only record lengths — matching the paper's "traffic
tunneling" design where the proxy encrypts whole flows, not payloads.

**Session resumption** (TLS-session-ticket style, DESIGN.md §14.2): a
server holding a :class:`SessionTicketKeeper` seals ``{master secret,
peer certificate, suite}`` into an opaque ticket issued inside its
FINISH.  A later dial presents the ticket in HELLO *alongside* the full
offer; if the server redeems it, both ends derive fresh keys from the
cached master plus the new randoms and exchange FINISH MACs — no DH, no
RSA, two messages fewer.  Any rejection (expired, tampered, unknown STEK
after a restart) falls back to the full handshake transparently, because
the full offer already rode the same HELLO.  Each resumption rotates in
a fresh ticket sealing the *new* master, so secrets ratchet forward.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
import threading
from typing import Callable, Optional

from repro.obs.racesan import shared_state
from repro.security.certs import Certificate, CertificateError
from repro.security.cipher import CIPHER_SUITES, RecordCipher, derive_session_keys
from repro.security.dh import DiffieHellman
from repro.security.rsa import RsaKeyPair, RsaPublicKey
from repro.transport.channel import Channel
from repro.transport.errors import TransportError
from repro.transport.frames import (
    Frame,
    FrameKind,
    decode_frame,
    decode_value,
    encode_frame,
    encode_value,
)

__all__ = [
    "HandshakeError",
    "PeerIdentity",
    "ResumptionTicket",
    "SecureChannel",
    "SessionTicketKeeper",
    "accept_secure",
    "connect_secure",
]

_MODES = ("dh", "rsa")
_LEGACY_SUITE = "sha256ctr"  # what a pre-fast-path peer speaks


def _choose_suite(offered) -> str:
    """Pick the best mutually-supported record suite, like TLS does.

    A peer that offers nothing (any pre-fast-path build) gets the
    original SHA-256 counter-mode suite, whose records are byte-for-byte
    what that peer produces and expects.
    """
    for suite in CIPHER_SUITES:
        if suite in offered:
            return suite
    return _LEGACY_SUITE


class HandshakeError(Exception):
    """Any failure to establish the secure channel."""


class PeerIdentity:
    """What the handshake authenticated about the other end."""

    def __init__(self, certificate: Certificate):
        self.certificate = certificate

    @property
    def subject(self) -> str:
        return self.certificate.subject

    @property
    def role(self) -> str:
        return self.certificate.role

    def __repr__(self) -> str:
        return f"PeerIdentity({self.subject!r}, role={self.role!r})"


class SecureChannel(Channel):
    """A channel whose frames are sealed end-to-end.

    Wraps an established plaintext channel: every outgoing frame is
    serialised, encrypted and authenticated as one record carried in a
    DATA frame; incoming records are verified, decrypted and re-parsed.
    """

    def __init__(
        self,
        inner: Channel,
        send_cipher: RecordCipher,
        recv_cipher: RecordCipher,
        peer: PeerIdentity,
        name: str = "secure",
    ):
        super().__init__(name=name)
        self._inner = inner
        self._send_cipher = send_cipher
        self._recv_cipher = recv_cipher
        self.peer = peer
        #: True when this channel was rebound from a resumption ticket
        #: (no asymmetric exchange was paid for it).
        self.resumed = False
        #: Ticket for the *next* dial to this server, when one issued.
        self.resumption_ticket: Optional["ResumptionTicket"] = None

    def send(self, frame: Frame) -> None:
        record = self._send_cipher.seal(encode_frame(frame))
        carrier = Frame(kind=FrameKind.DATA, channel=frame.channel, payload=record)
        self._inner.send(carrier)
        self.stats.on_send(len(record))

    def send_many(self, frames) -> None:
        """Seal a burst of frames and hand the records down as one batch.

        Each frame still becomes its own record (the wire format is
        unchanged, so a pre-fast-path peer interoperates); the win is that
        the inner transport writes all carriers with one vectored syscall.
        """
        carriers = []
        sizes = []
        for frame in frames:
            record = self._send_cipher.seal(encode_frame(frame))
            carriers.append(
                Frame(kind=FrameKind.DATA, channel=frame.channel, payload=record)
            )
            sizes.append(len(record))
        if not carriers:
            return
        self._inner.send_many(carriers)
        for size in sizes:
            self.stats.on_send(size)

    def recv(self, timeout: Optional[float] = None) -> Frame:
        carrier = self._inner.recv(timeout=timeout)
        return self._open_record(carrier)

    def _open_record(self, carrier: Frame) -> Frame:
        try:
            plaintext = self._recv_cipher.open(carrier.payload)
            frame = decode_frame(plaintext)
        except Exception as exc:
            raise HandshakeError(f"record verification failed: {exc}") from exc
        self.stats.on_receive(len(carrier.payload))
        return frame

    # -- reactor protocol: records open wherever the inner transport polls --

    def poll_recv(self) -> Optional[Frame]:
        carrier = self._inner.poll_recv()
        if carrier is None:
            return None
        return self._open_record(carrier)

    @property
    def supports_reactor(self) -> bool:
        return self._inner.supports_reactor

    def set_ready_callback(self, callback) -> None:
        self._inner.set_ready_callback(callback)

    @property
    def reactor_loop(self):
        """Pin to the loop owning the wrapped transport, if any."""
        return getattr(self._inner, "reactor_loop", None)

    def close(self) -> None:
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed

    @property
    def suite(self) -> str:
        """The record-cipher suite the handshake negotiated."""
        return self._send_cipher.suite


# ---------------------------------------------------------------------------
# Session resumption tickets
# ---------------------------------------------------------------------------


def _keystream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """Counter-mode SHA-256 stream XOR (seal/open are the same op).

    Tickets transit the *plaintext* handshake frames, and they contain
    the master secret — they must be confidential, not just
    authenticated.  Handshake-rate traffic only; the record path keeps
    its vectorized suites.
    """
    blocks = []
    for counter in range((len(data) + 31) // 32):
        blocks.append(
            hashlib.sha256(
                key + nonce + counter.to_bytes(8, "big")
            ).digest()
        )
    stream = b"".join(blocks)[: len(data)]
    return bytes(a ^ b for a, b in zip(data, stream))


class ResumptionTicket:
    """Client-held resumption state from a completed handshake.

    ``blob`` is opaque (sealed to the server's STEK); the rest is the
    client's half of the cached session: the master secret to derive
    fresh keys from, the negotiated suite, and the server certificate
    the original handshake authenticated (resumption re-uses, never
    re-proves, that identity).
    """

    __slots__ = ("blob", "master", "suite", "peer_cert")

    def __init__(
        self,
        blob: bytes,
        master: bytes,
        suite: str,
        peer_cert: Certificate,
    ) -> None:
        self.blob = blob
        self.master = master
        self.suite = suite
        self.peer_cert = peer_cert

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResumptionTicket(peer={self.peer_cert.subject!r}, "
            f"suite={self.suite!r}, {len(self.blob)}B)"
        )


@shared_state
class SessionTicketKeeper:
    """Server-side session-ticket encryption key (a STEK) plus policy.

    ``seal`` wraps ``{master, peer cert, suite, issued_at}`` into an
    opaque, authenticated, encrypted blob; ``redeem`` opens one and
    returns the state, or ``None`` for anything expired, tampered, or
    sealed under a different key (e.g. before a server restart) — the
    caller then simply runs the full handshake.  Stateless on the server
    like TLS tickets: no session cache to size or shard.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        lifetime: float = 3600.0,
        key: Optional[bytes] = None,
    ) -> None:
        self.clock = clock
        self.lifetime = float(lifetime)
        self._key = key if key is not None else secrets.token_bytes(32)
        # Counters feed the auth benchmarks and observability dumps.
        # One keeper serves every accept thread concurrently, so the
        # bumps below take this lock: `+= 1` is read-modify-write, and
        # two threads racing it lose increments.
        self._count_lock = threading.Lock()
        self.issued = 0
        self.redeemed = 0
        self.rejected = 0

    def seal(self, master: bytes, peer_cert: bytes, suite: str) -> bytes:
        state = encode_value(
            {
                "master": master,
                "cert": peer_cert,
                "suite": suite,
                "iat": self.clock(),
            }
        )
        nonce = secrets.token_bytes(16)
        sealed = _keystream_xor(self._key, nonce, state)
        mac = hmac.new(
            self._key, b"ticket|" + nonce + sealed, hashlib.sha256
        ).digest()
        with self._count_lock:
            self.issued += 1
        return encode_value({"n": nonce, "b": sealed, "m": mac})

    def redeem(self, blob: bytes) -> Optional[dict]:
        try:
            outer = decode_value(blob)
            nonce, sealed, mac = outer["n"], outer["b"], outer["m"]
            expected = hmac.new(
                self._key, b"ticket|" + nonce + sealed, hashlib.sha256
            ).digest()
            if not hmac.compare_digest(mac, expected):
                raise ValueError("ticket MAC mismatch")
            state = decode_value(_keystream_xor(self._key, nonce, sealed))
            if not isinstance(state, dict):
                raise ValueError("ticket state is not a dict")
            if self.clock() - float(state["iat"]) > self.lifetime:
                raise ValueError("ticket expired")
        except Exception:
            # Hostile or stale input: never an error, always a fallback.
            with self._count_lock:
                self.rejected += 1
            return None
        with self._count_lock:
            self.redeemed += 1
        return state


def _resumed_master(
    master: bytes, client_random: bytes, server_random: bytes
) -> bytes:
    """Ratchet the cached master forward with this dial's randoms."""
    return hashlib.sha256(
        b"resume|" + master + client_random + server_random
    ).digest()


# ---------------------------------------------------------------------------
# Handshake driver
# ---------------------------------------------------------------------------


def _hs_frame(step: str, body: dict) -> Frame:
    return Frame(
        kind=FrameKind.HANDSHAKE, headers={"step": step}, payload=encode_value(body)
    )


def _expect(channel: Channel, step: str, timeout: float) -> dict:
    try:
        frame = channel.recv(timeout=timeout)
    except TransportError as exc:
        raise HandshakeError(f"handshake interrupted waiting for {step}: {exc}") from exc
    if frame.kind != FrameKind.HANDSHAKE:
        raise HandshakeError(f"expected HANDSHAKE frame, got {frame.kind.name}")
    got = frame.headers.get("step")
    if got != step:
        raise HandshakeError(f"expected handshake step {step!r}, got {got!r}")
    try:
        body = decode_value(frame.payload)
    except Exception as exc:  # hostile peers send arbitrary bytes
        raise HandshakeError(f"malformed handshake body for {step!r}: {exc}") from exc
    if not isinstance(body, dict):
        raise HandshakeError(f"handshake body for {step!r} is not a dict")
    return body


def _master_secret(pre_master: bytes, client_random: bytes, server_random: bytes) -> bytes:
    return hashlib.sha256(
        b"master|" + pre_master + client_random + server_random
    ).digest()


def _transcript_digest(*parts: bytes) -> bytes:
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(4, "big"))
        h.update(part)
    return h.digest()


def _validate_peer_cert(
    blob: bytes,
    trust_anchor: RsaPublicKey,
    now: float,
    expected_role: Optional[str],
) -> Certificate:
    try:
        cert = Certificate.from_bytes(blob)
        cert.check(trust_anchor, now, expected_role=expected_role)
    except CertificateError as exc:
        raise HandshakeError(f"peer certificate rejected: {exc}") from exc
    return cert


def connect_secure(
    channel: Channel,
    keypair: RsaKeyPair,
    certificate: Certificate,
    trust_anchor: RsaPublicKey,
    clock: Callable[[], float],
    mode: str = "dh",
    expected_peer_role: Optional[str] = None,
    timeout: float = 30.0,
    resumption: Optional[ResumptionTicket] = None,
) -> SecureChannel:
    """Run the client side of the handshake on ``channel``.

    ``resumption`` offers a ticket from an earlier handshake with this
    server; acceptance skips the asymmetric exchange, rejection falls
    back to the full handshake on the same connection.  Every failure —
    protocol violation, malformed field, peer disconnect — surfaces as
    :class:`HandshakeError`: handshake input is untrusted by definition.
    """
    try:
        return _connect_secure(
            channel,
            keypair,
            certificate,
            trust_anchor,
            clock,
            mode,
            expected_peer_role,
            timeout,
            resumption,
        )
    except HandshakeError:
        raise
    except Exception as exc:
        raise HandshakeError(f"handshake failed: {exc}") from exc


def _connect_secure(
    channel: Channel,
    keypair: RsaKeyPair,
    certificate: Certificate,
    trust_anchor: RsaPublicKey,
    clock: Callable[[], float],
    mode: str,
    expected_peer_role: Optional[str],
    timeout: float,
    resumption: Optional[ResumptionTicket] = None,
) -> SecureChannel:
    if mode not in _MODES:
        raise HandshakeError(f"unknown key-exchange mode: {mode!r}")
    client_random = secrets.token_bytes(32)
    hello_body: dict = {
        "random": client_random,
        "modes": list(_MODES),
        "preferred": mode,
        # Record-suite offer; pre-fast-path servers ignore this key
        # and reply without "cipher", selecting the legacy suite.
        "ciphers": list(CIPHER_SUITES),
    }
    if resumption is not None:
        # The ticket rides *alongside* the full offer, so a server that
        # rejects it (or predates tickets) continues the full handshake
        # without a second round trip.
        hello_body["ticket"] = resumption.blob
    channel.send(_hs_frame("hello", hello_body))

    server_hello = _expect(channel, "hello", timeout)
    if resumption is not None and server_hello.get("resumed"):
        return _finish_resumed_client(
            channel, resumption, certificate, client_random, server_hello,
            timeout,
        )
    server_random = server_hello["random"]
    chosen = server_hello["mode"]
    if chosen not in _MODES:
        raise HandshakeError(f"server chose unknown mode: {chosen!r}")
    suite = server_hello.get("cipher", _LEGACY_SUITE)
    if suite not in CIPHER_SUITES:
        raise HandshakeError(f"server chose unknown cipher suite: {suite!r}")
    server_cert = _validate_peer_cert(
        server_hello["certificate"], trust_anchor, clock(), expected_peer_role
    )

    if chosen == "dh":
        server_dh_public = server_hello["dh_public"]
        signed_blob = _transcript_digest(
            client_random, server_random, encode_value(server_dh_public)
        )
        if not server_cert.public_key.verify(signed_blob, server_hello["signature"]):
            raise HandshakeError("server key-exchange signature invalid")
        dh = DiffieHellman()
        pre_master = dh.shared_secret(server_dh_public)
        key_exchange: dict = {"dh_public": dh.public}
    else:  # rsa key transport
        pre_master = secrets.token_bytes(32)
        key_exchange = {
            "encrypted_pre_master": server_cert.public_key.encrypt(pre_master)
        }

    # Cover the negotiated suite with the signature and FINISH MACs so
    # an active attacker cannot tamper the cleartext "cipher" field to
    # downgrade or desync the record layer.
    transcript = _transcript_digest(
        client_random,
        server_random,
        certificate.to_bytes(),
        encode_value(key_exchange),
        suite.encode(),
    )
    channel.send(
        _hs_frame(
            "keyex",
            {
                "certificate": certificate.to_bytes(),
                "exchange": key_exchange,
                "signature": keypair.sign(transcript),
            },
        )
    )

    master = _master_secret(pre_master, client_random, server_random)
    client_keys = derive_session_keys(master, "client")
    server_keys = derive_session_keys(master, "server")

    finish = _expect(channel, "finish", timeout)
    expected_mac = hmac.new(server_keys.mac_key, transcript, hashlib.sha256).digest()
    if not hmac.compare_digest(finish["mac"], expected_mac):
        raise HandshakeError("server FINISH verification failed")

    channel.send(
        _hs_frame(
            "finish",
            {"mac": hmac.new(client_keys.mac_key, transcript, hashlib.sha256).digest()},
        )
    )

    secure = SecureChannel(
        inner=channel,
        send_cipher=RecordCipher(client_keys, suite=suite),
        recv_cipher=RecordCipher(server_keys, suite=suite),
        peer=PeerIdentity(server_cert),
        name=f"secure:{certificate.subject}->{server_cert.subject}",
    )
    ticket_blob = finish.get("ticket")
    if isinstance(ticket_blob, bytes):
        secure.resumption_ticket = ResumptionTicket(
            ticket_blob, master, suite, server_cert
        )
    return secure


def _finish_resumed_client(
    channel: Channel,
    resumption: ResumptionTicket,
    certificate: Certificate,
    client_random: bytes,
    server_hello: dict,
    timeout: float,
) -> SecureChannel:
    """Complete a ticket-accepted handshake: derive, MAC, done.

    Authentication here is possession of the cached master on both
    sides: the server proved it by opening the ticket (sealed under its
    STEK), the client by its FINISH MAC — both chains of custody start
    at the original, certificate-authenticated handshake.
    """
    server_random = server_hello["random"]
    suite = server_hello.get("cipher", resumption.suite)
    if suite not in CIPHER_SUITES:
        raise HandshakeError(f"server chose unknown cipher suite: {suite!r}")
    master = _resumed_master(resumption.master, client_random, server_random)
    client_keys = derive_session_keys(master, "client")
    server_keys = derive_session_keys(master, "server")
    # The suite rides the resumed hello in the clear; covering the value
    # each side *uses* with the FINISH MACs means any tampering (or a
    # downgrade) desyncs the transcripts and fails the handshake.
    transcript = _transcript_digest(
        b"resume", client_random, server_random, resumption.blob, suite.encode()
    )
    finish = _expect(channel, "finish", timeout)
    expected_mac = hmac.new(
        server_keys.mac_key, transcript, hashlib.sha256
    ).digest()
    if not hmac.compare_digest(finish["mac"], expected_mac):
        raise HandshakeError("server resumed-FINISH verification failed")
    channel.send(
        _hs_frame(
            "finish",
            {"mac": hmac.new(client_keys.mac_key, transcript, hashlib.sha256).digest()},
        )
    )
    secure = SecureChannel(
        inner=channel,
        send_cipher=RecordCipher(client_keys, suite=suite),
        recv_cipher=RecordCipher(server_keys, suite=suite),
        peer=PeerIdentity(resumption.peer_cert),
        name=(
            f"secure:{certificate.subject}->{resumption.peer_cert.subject}"
        ),
    )
    secure.resumed = True
    new_blob = finish.get("ticket")
    if isinstance(new_blob, bytes):
        # Single-use rotation: the fresh ticket seals the *new* master.
        secure.resumption_ticket = ResumptionTicket(
            new_blob, master, suite, resumption.peer_cert
        )
    return secure


def accept_secure(
    channel: Channel,
    keypair: RsaKeyPair,
    certificate: Certificate,
    trust_anchor: RsaPublicKey,
    clock: Callable[[], float],
    expected_peer_role: Optional[str] = None,
    timeout: float = 30.0,
    revocation_check: Optional[Callable[[Certificate], bool]] = None,
    ticket_keeper: Optional[SessionTicketKeeper] = None,
) -> SecureChannel:
    """Run the server side of the handshake on ``channel``.

    ``revocation_check`` (cert → bool) lets a proxy consult the CA's
    revocation list for client certificates.  ``ticket_keeper`` enables
    session resumption: full handshakes issue tickets, and a HELLO
    presenting a redeemable ticket skips the asymmetric exchange.  All
    failures surface as :class:`HandshakeError` (see
    :func:`connect_secure`).
    """
    try:
        return _accept_secure(
            channel,
            keypair,
            certificate,
            trust_anchor,
            clock,
            expected_peer_role,
            timeout,
            revocation_check,
            ticket_keeper,
        )
    except HandshakeError:
        raise
    except Exception as exc:
        raise HandshakeError(f"handshake failed: {exc}") from exc


def _accept_secure(
    channel: Channel,
    keypair: RsaKeyPair,
    certificate: Certificate,
    trust_anchor: RsaPublicKey,
    clock: Callable[[], float],
    expected_peer_role: Optional[str],
    timeout: float,
    revocation_check: Optional[Callable[[Certificate], bool]],
    ticket_keeper: Optional[SessionTicketKeeper] = None,
) -> SecureChannel:
    hello = _expect(channel, "hello", timeout)
    client_random = hello["random"]
    ticket_blob = hello.get("ticket")
    if ticket_keeper is not None and isinstance(ticket_blob, bytes):
        state = ticket_keeper.redeem(ticket_blob)
        if state is not None:
            resumed = _accept_resumed(
                channel, certificate, state, client_random, ticket_blob,
                ticket_keeper, expected_peer_role, revocation_check, timeout,
            )
            if resumed is not None:
                return resumed
            # Disqualified after redemption (role/suite/revocation):
            # nothing was sent yet, so the full handshake proceeds.
    offered = hello.get("modes", [])
    preferred = hello.get("preferred", "dh")
    mode = preferred if preferred in _MODES and preferred in offered else "dh"
    offered_suites = hello.get("ciphers", ())
    if not isinstance(offered_suites, (list, tuple)):
        raise HandshakeError("malformed cipher-suite offer")
    suite = _choose_suite(offered_suites)

    server_random = secrets.token_bytes(32)
    response: dict = {
        "random": server_random,
        "mode": mode,
        "certificate": certificate.to_bytes(),
        # Pre-fast-path clients ignore this key; they always speak the
        # legacy suite, which _choose_suite selected for them above.
        "cipher": suite,
    }
    dh: Optional[DiffieHellman] = None
    if mode == "dh":
        dh = DiffieHellman()
        response["dh_public"] = dh.public
        response["signature"] = keypair.sign(
            _transcript_digest(client_random, server_random, encode_value(dh.public))
        )
    channel.send(_hs_frame("hello", response))

    keyex = _expect(channel, "keyex", timeout)
    client_cert = _validate_peer_cert(
        keyex["certificate"], trust_anchor, clock(), expected_peer_role
    )
    if revocation_check is not None and revocation_check(client_cert):
        raise HandshakeError(
            f"peer certificate rejected: revoked ({client_cert.subject!r})"
        )
    exchange = keyex["exchange"]
    transcript = _transcript_digest(
        client_random,
        server_random,
        keyex["certificate"],
        encode_value(exchange),
        suite.encode(),
    )
    if not client_cert.public_key.verify(transcript, keyex["signature"]):
        raise HandshakeError("client transcript signature invalid")

    if mode == "dh":
        assert dh is not None
        pre_master = dh.shared_secret(exchange["dh_public"])
    else:
        try:
            pre_master = keypair.decrypt(exchange["encrypted_pre_master"])
        except Exception as exc:
            raise HandshakeError(f"pre-master decryption failed: {exc}") from exc
        if len(pre_master) != 32:
            raise HandshakeError("pre-master secret has wrong length")

    master = _master_secret(pre_master, client_random, server_random)
    client_keys = derive_session_keys(master, "client")
    server_keys = derive_session_keys(master, "server")

    finish_body: dict = {
        "mac": hmac.new(server_keys.mac_key, transcript, hashlib.sha256).digest()
    }
    if ticket_keeper is not None:
        # Issue the resumption ticket for this peer's next dial.  Old
        # clients ignore the extra key.
        finish_body["ticket"] = ticket_keeper.seal(
            master, keyex["certificate"], suite
        )
    channel.send(_hs_frame("finish", finish_body))
    finish = _expect(channel, "finish", timeout)
    expected_mac = hmac.new(client_keys.mac_key, transcript, hashlib.sha256).digest()
    if not hmac.compare_digest(finish["mac"], expected_mac):
        raise HandshakeError("client FINISH verification failed")

    return SecureChannel(
        inner=channel,
        send_cipher=RecordCipher(server_keys, suite=suite),
        recv_cipher=RecordCipher(client_keys, suite=suite),
        peer=PeerIdentity(client_cert),
        name=f"secure:{certificate.subject}->{client_cert.subject}",
    )


def _accept_resumed(
    channel: Channel,
    certificate: Certificate,
    state: dict,
    client_random: bytes,
    ticket_blob: bytes,
    ticket_keeper: SessionTicketKeeper,
    expected_peer_role: Optional[str],
    revocation_check: Optional[Callable[[Certificate], bool]],
    timeout: float,
) -> Optional[SecureChannel]:
    """Serve a redeemed ticket; ``None`` (before any send) → full path.

    The stored certificate was CA-validated at the original handshake;
    within the ticket lifetime we re-check only what can have changed
    out-of-band — expected role and explicit revocation.
    """
    try:
        client_cert = Certificate.from_bytes(state["cert"])
        suite = state["suite"]
        cached_master = state["master"]
    except Exception:
        return None
    if suite not in CIPHER_SUITES or not isinstance(cached_master, bytes):
        return None
    if expected_peer_role is not None and client_cert.role != expected_peer_role:
        return None
    if revocation_check is not None and revocation_check(client_cert):
        return None

    server_random = secrets.token_bytes(32)
    master = _resumed_master(cached_master, client_random, server_random)
    client_keys = derive_session_keys(master, "client")
    server_keys = derive_session_keys(master, "server")
    channel.send(
        _hs_frame(
            "hello",
            {"resumed": True, "random": server_random, "cipher": suite},
        )
    )
    transcript = _transcript_digest(
        b"resume", client_random, server_random, ticket_blob, suite.encode()
    )
    channel.send(
        _hs_frame(
            "finish",
            {
                "mac": hmac.new(
                    server_keys.mac_key, transcript, hashlib.sha256
                ).digest(),
                # Rotate: the next dial resumes from the new master.
                "ticket": ticket_keeper.seal(
                    master, state["cert"], suite
                ),
            },
        )
    )
    finish = _expect(channel, "finish", timeout)
    expected_mac = hmac.new(
        client_keys.mac_key, transcript, hashlib.sha256
    ).digest()
    if not hmac.compare_digest(finish["mac"], expected_mac):
        raise HandshakeError("client resumed-FINISH verification failed")
    secure = SecureChannel(
        inner=channel,
        send_cipher=RecordCipher(server_keys, suite=suite),
        recv_cipher=RecordCipher(client_keys, suite=suite),
        peer=PeerIdentity(client_cert),
        name=f"secure:{certificate.subject}->{client_cert.subject}",
    )
    secure.resumed = True
    return secure

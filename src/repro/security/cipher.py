"""Authenticated symmetric records: the tunnel's bulk cipher.

Once the handshake agrees on session keys, every tunneled frame body is
protected by :class:`RecordCipher`: a SHA-256-based counter-mode keystream
for confidentiality and HMAC-SHA-256 over (sequence number, header,
ciphertext) for integrity, composed encrypt-then-MAC.  Sequence numbers
are bound into both keystream and MAC, so replayed, reordered or
truncated records are rejected — the properties SSL gave the paper.

Record layout::

    seq      8 bytes   big-endian record sequence number
    mac     32 bytes   HMAC-SHA-256 tag
    body     n bytes   ciphertext

Pure-Python and therefore slow relative to AES-NI; the simulation layer
models crypto cost per byte separately, and benchmark E9 measures the
real implementation's throughput.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
import struct
from dataclasses import dataclass

__all__ = ["CipherError", "RecordCipher", "SessionKeys", "derive_session_keys"]

_SEQ = struct.Struct("!Q")
_MAC_LEN = 32
_HEADER_LEN = _SEQ.size + _MAC_LEN
_BLOCK = 32  # SHA-256 output size drives the keystream block


class CipherError(Exception):
    """Raised on MAC failure, replay, or malformed records."""


@dataclass(frozen=True)
class SessionKeys:
    """Directional key material derived from a handshake secret."""

    encrypt_key: bytes
    mac_key: bytes

    def __post_init__(self) -> None:
        if len(self.encrypt_key) != 32 or len(self.mac_key) != 32:
            raise CipherError("session keys must be 32 bytes each")


def derive_session_keys(master_secret: bytes, direction: str) -> SessionKeys:
    """Expand a master secret into directional encrypt/MAC keys.

    ``direction`` is a label ("client" or "server") so each flow direction
    gets independent keys, as TLS does.
    """
    if not master_secret:
        raise CipherError("empty master secret")
    enc = hashlib.sha256(b"enc|" + direction.encode() + b"|" + master_secret).digest()
    mac = hashlib.sha256(b"mac|" + direction.encode() + b"|" + master_secret).digest()
    return SessionKeys(encrypt_key=enc, mac_key=mac)


def _keystream(key: bytes, seq: int, nbytes: int) -> bytes:
    """SHA-256 in counter mode: KS_i = H(key || seq || i)."""
    blocks = []
    seq_raw = _SEQ.pack(seq)
    for counter in range((nbytes + _BLOCK - 1) // _BLOCK):
        blocks.append(
            hashlib.sha256(key + seq_raw + counter.to_bytes(8, "big")).digest()
        )
    return b"".join(blocks)[:nbytes]


class RecordCipher:
    """One direction of an established secure channel.

    The sender and receiver each hold a RecordCipher built from the same
    :class:`SessionKeys`; ``seal`` increments the send sequence, ``open``
    enforces strictly increasing receive sequence (replay protection).
    """

    def __init__(self, keys: SessionKeys):
        self.keys = keys
        self._send_seq = 0
        self._recv_seq = -1

    def seal(self, plaintext: bytes) -> bytes:
        """Encrypt and authenticate one record."""
        seq = self._send_seq
        self._send_seq += 1
        stream = _keystream(self.keys.encrypt_key, seq, len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        mac = hmac.new(
            self.keys.mac_key, _SEQ.pack(seq) + ciphertext, hashlib.sha256
        ).digest()
        return _SEQ.pack(seq) + mac + ciphertext

    def open(self, record: bytes) -> bytes:
        """Verify and decrypt one record; raises CipherError on any fault."""
        if len(record) < _HEADER_LEN:
            raise CipherError(f"record too short: {len(record)} bytes")
        seq = _SEQ.unpack_from(record, 0)[0]
        mac = record[_SEQ.size : _HEADER_LEN]
        ciphertext = record[_HEADER_LEN:]
        expected = hmac.new(
            self.keys.mac_key, _SEQ.pack(seq) + ciphertext, hashlib.sha256
        ).digest()
        if not hmac.compare_digest(mac, expected):
            raise CipherError("record MAC verification failed")
        if seq <= self._recv_seq:
            raise CipherError(f"replayed or reordered record: seq {seq}")
        self._recv_seq = seq
        stream = _keystream(self.keys.encrypt_key, seq, len(ciphertext))
        return bytes(c ^ s for c, s in zip(ciphertext, stream))

    @staticmethod
    def overhead() -> int:
        """Fixed bytes added to every record."""
        return _HEADER_LEN


def random_master_secret() -> bytes:
    """Fresh 32-byte master secret (used by tests and the RSA key-transport
    handshake variant, where the client generates the secret)."""
    return secrets.token_bytes(32)

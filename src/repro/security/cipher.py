"""Authenticated symmetric records: the tunnel's bulk cipher.

Once the handshake agrees on session keys, every tunneled frame body is
protected by :class:`RecordCipher`: a counter-mode keystream for
confidentiality and HMAC-SHA-256 over (sequence number, ciphertext) for
integrity, composed encrypt-then-MAC.  Sequence numbers are bound into
both keystream and MAC, so replayed, reordered or truncated records are
rejected — the properties SSL gave the paper.

Record layout (identical for every suite)::

    seq      8 bytes   big-endian record sequence number
    mac     32 bytes   HMAC-SHA-256 tag
    body     n bytes   ciphertext

Two keystream suites share that layout (the handshake negotiates one,
exactly as it negotiates the key-exchange mode):

* ``"sha256ctr"`` — the original SHA-256 counter mode,
  ``KS_i = H(key || seq || i)``.  Byte-for-byte compatible with
  pre-fast-path peers, and the default when the peer negotiates nothing.
* ``"shake128"`` — SHAKE-128 as an extendable-output function,
  ``KS = SHAKE128(key || seq)``; the whole record keystream is one C
  call instead of one hash per 32 bytes, an order of magnitude faster.

Both run the fast data path: whole-buffer big-integer XOR and a
pre-keyed HMAC template cloned per record (two hash updates instead of a
full key schedule).  Benchmark ``bench_fastpath`` tracks the measured
throughput of the seed implementation and both suites.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
import struct
from dataclasses import dataclass

from repro.transport.frames import MAX_FRAME_WIRE_SIZE

__all__ = [
    "CIPHER_SUITES",
    "CipherError",
    "MAX_RECORD_BODY",
    "RecordCipher",
    "SessionKeys",
    "derive_session_keys",
]

_SEQ = struct.Struct("!Q")
_MAC_LEN = 32
_HEADER_LEN = _SEQ.size + _MAC_LEN
_BLOCK = 32  # SHA-256 output size drives the sha256ctr keystream block

#: Keystream suites, best first.  ``sha256ctr`` must stay last: it is the
#: wire-compatible fallback every peer supports.
CIPHER_SUITES = ("shake128", "sha256ctr")

#: Largest ciphertext a well-formed peer can produce: a record body is an
#: encoded frame, bounded by the frame wire format.  Anything larger is
#: rejected *before* the MAC is computed so a hostile peer cannot force
#: unbounded hashing work.
MAX_RECORD_BODY = MAX_FRAME_WIRE_SIZE


class CipherError(Exception):
    """Raised on MAC failure, replay, or malformed records."""


@dataclass(frozen=True)
class SessionKeys:
    """Directional key material derived from a handshake secret."""

    encrypt_key: bytes
    mac_key: bytes

    def __post_init__(self) -> None:
        if len(self.encrypt_key) != 32 or len(self.mac_key) != 32:
            raise CipherError("session keys must be 32 bytes each")


def derive_session_keys(master_secret: bytes, direction: str) -> SessionKeys:
    """Expand a master secret into directional encrypt/MAC keys.

    ``direction`` is a label ("client" or "server") so each flow direction
    gets independent keys, as TLS does.
    """
    if not master_secret:
        raise CipherError("empty master secret")
    enc = hashlib.sha256(b"enc|" + direction.encode() + b"|" + master_secret).digest()
    mac = hashlib.sha256(b"mac|" + direction.encode() + b"|" + master_secret).digest()
    return SessionKeys(encrypt_key=enc, mac_key=mac)


def _xor_bytes(data: bytes, stream: bytes) -> bytes:
    """XOR two equal-length buffers as one big-integer operation."""
    n = len(data)
    if n == 0:
        return b""
    return (int.from_bytes(data, "little") ^ int.from_bytes(stream, "little")).to_bytes(
        n, "little"
    )


class RecordCipher:
    """One direction of an established secure channel.

    The sender and receiver each hold a RecordCipher built from the same
    :class:`SessionKeys` and suite; ``seal`` increments the send sequence,
    ``open`` enforces strictly increasing receive sequence (replay
    protection).
    """

    def __init__(self, keys: SessionKeys, suite: str = "sha256ctr"):
        if suite not in CIPHER_SUITES:
            raise CipherError(f"unknown cipher suite: {suite!r}")
        self.keys = keys
        self.suite = suite
        self._send_seq = 0
        self._recv_seq = -1
        # Pre-keyed templates: cloning skips the HMAC key schedule (two
        # SHA-256 inits + key XORs) and the keystream prefix hash per record.
        self._mac_template = hmac.new(keys.mac_key, digestmod=hashlib.sha256)
        if suite == "shake128":
            self._ks_base = hashlib.shake_128(keys.encrypt_key)
            self._keystream = self._keystream_shake128
        else:
            self._ks_base = hashlib.sha256(keys.encrypt_key)
            self._keystream = self._keystream_sha256ctr

    def _keystream_sha256ctr(self, seq: int, nbytes: int) -> bytes:
        """SHA-256 in counter mode: KS_i = H(key || seq || i).

        The per-block hash input shares the (key || seq) prefix, so a
        partially-updated hash object is cloned per block instead of
        re-hashing the prefix; output is identical to hashing the full
        concatenation, i.e. byte-compatible with the seed implementation.
        """
        if nbytes <= 0:
            return b""
        base = self._ks_base.copy()
        base.update(_SEQ.pack(seq))
        blocks = []
        append = blocks.append
        for counter in range((nbytes + _BLOCK - 1) // _BLOCK):
            h = base.copy()
            h.update(counter.to_bytes(8, "big"))
            append(h.digest())
        stream = b"".join(blocks)
        return stream if len(stream) == nbytes else stream[:nbytes]

    def _keystream_shake128(self, seq: int, nbytes: int) -> bytes:
        """SHAKE-128 as an XOF: the whole keystream in one squeeze."""
        if nbytes <= 0:
            return b""
        h = self._ks_base.copy()
        h.update(_SEQ.pack(seq))
        return h.digest(nbytes)

    def _mac(self, seq_raw: bytes, ciphertext: bytes) -> bytes:
        m = self._mac_template.copy()
        m.update(seq_raw)
        m.update(ciphertext)
        return m.digest()

    def seal(self, plaintext: bytes) -> bytes:
        """Encrypt and authenticate one record."""
        seq = self._send_seq
        self._send_seq += 1
        seq_raw = _SEQ.pack(seq)
        ciphertext = _xor_bytes(plaintext, self._keystream(seq, len(plaintext)))
        return seq_raw + self._mac(seq_raw, ciphertext) + ciphertext

    def open(self, record: bytes) -> bytes:
        """Verify and decrypt one record; raises CipherError on any fault."""
        if len(record) < _HEADER_LEN:
            raise CipherError(f"record too short: {len(record)} bytes")
        body_len = len(record) - _HEADER_LEN
        if body_len > MAX_RECORD_BODY:
            # Reject before MACing: no hashing work for absurd lengths.
            raise CipherError(f"record body too large: {body_len} bytes")
        seq = _SEQ.unpack_from(record, 0)[0]
        mac = record[_SEQ.size : _HEADER_LEN]
        ciphertext = record[_HEADER_LEN:]
        expected = self._mac(record[: _SEQ.size], ciphertext)
        if not hmac.compare_digest(mac, expected):
            raise CipherError("record MAC verification failed")
        if seq <= self._recv_seq:
            raise CipherError(f"replayed or reordered record: seq {seq}")
        self._recv_seq = seq
        return _xor_bytes(ciphertext, self._keystream(seq, body_len))

    @staticmethod
    def overhead() -> int:
        """Fixed bytes added to every record."""
        return _HEADER_LEN


def random_master_secret() -> bytes:
    """Fresh 32-byte master secret (used by tests and the RSA key-transport
    handshake variant, where the client generates the secret)."""
    return secrets.token_bytes(32)

"""User authentication and access permissions.

The paper's client-authentication layer "is responsible for providing user
authentication and right of access", with userid/password authentication,
digital signatures, and "access permissions … controlled individually or
by user groups", validated at both the originating and destination proxies.

This module provides:

* :class:`UserDirectory` — userid → salted-hashed password plus optional
  registered signing key; group membership.
* :class:`AccessControlList` — (principal, resource, action) permissions
  where a principal is a user or a group, with deny-by-default semantics.
* :class:`Credential` — a signed assertion of identity a proxy can verify
  without contacting the home site (used for the destination-proxy check).
"""

from __future__ import annotations

import fnmatch
import hashlib
import hmac
import secrets
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.security.rsa import RsaKeyPair, RsaPublicKey
from repro.transport.frames import decode_value, encode_value

__all__ = [
    "AccessControlList",
    "AuthenticationError",
    "Credential",
    "PermissionDenied",
    "UserDirectory",
]

_PBKDF_ITERATIONS = 10_000  # modest: per-request auth cost matters in E8


class AuthenticationError(Exception):
    """Unknown user, wrong password, or bad signature."""


class PermissionDenied(Exception):
    """The ACL rejected the (user, resource, action) triple."""


@dataclass
class _UserRecord:
    userid: str
    salt: bytes
    password_hash: bytes
    public_key: Optional[RsaPublicKey] = None
    enabled: bool = True


class UserDirectory:
    """Userid/password store with group membership.

    Passwords are salted PBKDF2-HMAC-SHA256; verification is constant-time.
    """

    def __init__(self, pbkdf_iterations: int = _PBKDF_ITERATIONS) -> None:
        # The iteration count is per-directory so benchmarks can build
        # million-user stores without paying 10k rounds per add_user;
        # the default (and every production path) is unchanged.
        self._iterations = int(pbkdf_iterations)
        self._users: dict[str, _UserRecord] = {}
        self._groups: dict[str, set[str]] = {}

    # -- user management -----------------------------------------------------

    def add_user(
        self,
        userid: str,
        password: str,
        public_key: Optional[RsaPublicKey] = None,
    ) -> None:
        if not userid:
            raise ValueError("empty userid")
        if userid in self._users:
            raise ValueError(f"user already exists: {userid!r}")
        salt = secrets.token_bytes(16)
        self._users[userid] = _UserRecord(
            userid=userid,
            salt=salt,
            password_hash=self._hash(password, salt),
            public_key=public_key,
        )

    def remove_user(self, userid: str) -> None:
        if userid not in self._users:
            raise KeyError(userid)
        del self._users[userid]
        for members in self._groups.values():
            members.discard(userid)

    def disable_user(self, userid: str) -> None:
        self._record(userid).enabled = False

    def set_password(self, userid: str, password: str) -> None:
        record = self._record(userid)
        record.salt = secrets.token_bytes(16)
        record.password_hash = self._hash(password, record.salt)

    def register_key(self, userid: str, public_key: RsaPublicKey) -> None:
        self._record(userid).public_key = public_key

    def known_users(self) -> list[str]:
        return sorted(self._users)

    def _record(self, userid: str) -> _UserRecord:
        try:
            return self._users[userid]
        except KeyError:
            raise KeyError(f"unknown user: {userid!r}") from None

    def _hash(self, password: str, salt: bytes) -> bytes:
        return hashlib.pbkdf2_hmac(
            "sha256", password.encode("utf-8"), salt, self._iterations
        )

    # -- authentication --------------------------------------------------------

    def authenticate_password(self, userid: str, password: str) -> None:
        """Check a userid/password pair; raises AuthenticationError."""
        record = self._users.get(userid)
        if record is None or not record.enabled:
            # Burn the same hashing cost for unknown users (timing parity).
            self._hash(password, b"\x00" * 16)
            raise AuthenticationError(f"authentication failed for {userid!r}")
        candidate = self._hash(password, record.salt)
        if not hmac.compare_digest(candidate, record.password_hash):
            raise AuthenticationError(f"authentication failed for {userid!r}")

    def verify_signature(self, userid: str, message: bytes, signature: bytes) -> None:
        """Check a digital signature against the user's registered key."""
        record = self._users.get(userid)
        if record is None or not record.enabled or record.public_key is None:
            raise AuthenticationError(f"no signing key for {userid!r}")
        if not record.public_key.verify(message, signature):
            raise AuthenticationError(f"signature verification failed for {userid!r}")

    # -- groups ------------------------------------------------------------------

    def create_group(self, group: str) -> None:
        if group in self._groups:
            raise ValueError(f"group already exists: {group!r}")
        self._groups[group] = set()

    def add_to_group(self, group: str, userid: str) -> None:
        if group not in self._groups:
            raise KeyError(f"unknown group: {group!r}")
        self._record(userid)  # validates the user exists
        self._groups[group].add(userid)

    def remove_from_group(self, group: str, userid: str) -> None:
        if group not in self._groups:
            raise KeyError(f"unknown group: {group!r}")
        self._groups[group].discard(userid)

    def groups_of(self, userid: str) -> set[str]:
        return {g for g, members in self._groups.items() if userid in members}


class AccessControlList:
    """Deny-by-default permissions for users and groups.

    Rules are (principal, resource-pattern, action) triples; principals
    are ``"user:alice"`` or ``"group:physics"``, resource patterns are
    fnmatch globs over resource names (``"site:*"``, ``"mpi:run"``).
    Explicit deny rules override grants, so a compromised group membership
    cannot resurrect a banned user.
    """

    def __init__(self, directory: UserDirectory) -> None:
        self._directory = directory
        self._grants: list[tuple[str, str, str]] = []
        self._denies: list[tuple[str, str, str]] = []

    def grant(self, principal: str, resource_pattern: str, action: str) -> None:
        self._grants.append(self._validated(principal, resource_pattern, action))

    def deny(self, principal: str, resource_pattern: str, action: str) -> None:
        self._denies.append(self._validated(principal, resource_pattern, action))

    @staticmethod
    def _validated(principal: str, pattern: str, action: str) -> tuple[str, str, str]:
        kind, _, name = principal.partition(":")
        if kind not in ("user", "group") or not name:
            raise ValueError(
                f"principal must be 'user:<id>' or 'group:<id>': {principal!r}"
            )
        if not pattern or not action:
            raise ValueError("empty resource pattern or action")
        return principal, pattern, action

    def _principals_for(self, userid: str) -> set[str]:
        principals = {f"user:{userid}"}
        principals.update(f"group:{g}" for g in self._directory.groups_of(userid))
        return principals

    def is_allowed(self, userid: str, resource: str, action: str) -> bool:
        principals = self._principals_for(userid)

        def matches(rules: list[tuple[str, str, str]]) -> bool:
            return any(
                principal in principals
                and fnmatch.fnmatchcase(resource, pattern)
                and (rule_action == action or rule_action == "*")
                for principal, pattern, rule_action in rules
            )

        if matches(self._denies):
            return False
        return matches(self._grants)

    def check(self, userid: str, resource: str, action: str) -> None:
        if not self.is_allowed(userid, resource, action):
            raise PermissionDenied(
                f"user {userid!r} may not {action!r} on {resource!r}"
            )


class Credential:
    """A signed identity assertion, verifiable at the destination proxy.

    The originating proxy authenticates the user (password or signature)
    and emits a credential signed with the *proxy's* key; the destination
    proxy trusts it because the proxy's certificate chains to the grid CA.
    This implements the paper's "access permissions are validated at the
    originating and destination proxies" without a round-trip to the home
    site per request.
    """

    def __init__(
        self,
        userid: str,
        issuer: str,
        issued_at: float,
        payload: bytes,
        signature: bytes,
    ) -> None:
        self.userid = userid
        self.issuer = issuer
        self.issued_at = issued_at
        self._payload = payload
        self.signature = signature

    @classmethod
    def issue(
        cls, userid: str, issuer: str, now: float, issuer_key: RsaKeyPair
    ) -> "Credential":
        payload = encode_value(
            {"userid": userid, "issuer": issuer, "issued_at": now}
        )
        return cls(
            userid=userid,
            issuer=issuer,
            issued_at=now,
            payload=payload,
            signature=issuer_key.sign(payload),
        )

    def to_bytes(self) -> bytes:
        return encode_value({"payload": self._payload, "signature": self.signature})

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Credential":
        try:
            outer = decode_value(blob)
            fields = decode_value(outer["payload"])
            return cls(
                userid=fields["userid"],
                issuer=fields["issuer"],
                issued_at=fields["issued_at"],
                payload=outer["payload"],
                signature=outer["signature"],
            )
        except Exception as exc:
            raise AuthenticationError(f"malformed credential: {exc}") from exc

    def verify(
        self,
        issuer_public: RsaPublicKey,
        now: Union[float, Callable[[], float]],
        max_age: float = 3600.0,
    ) -> None:
        """Check signature and freshness.

        ``now`` is a timestamp *or* a clock callable: callers that own a
        seeded clock (proxies under the simulation transport) pass the
        clock itself so freshness is read at verification time from the
        same time source the chaos scheduler drives — wall-clock leaking
        in here is exactly what gridlint GL401 exists to catch, and what
        made replayed fault schedules time-sensitive.
        """
        if callable(now):
            now = now()
        if not issuer_public.verify(self._payload, self.signature):
            raise AuthenticationError(
                f"credential signature invalid (user {self.userid!r})"
            )
        if now - self.issued_at > max_age:
            raise AuthenticationError(f"credential expired (user {self.userid!r})")
        if self.issued_at - now > 60.0:
            raise AuthenticationError("credential issued in the future")

"""RSA key pairs, signatures and key transport.

Substitutes for the asymmetric half of OpenSSL in the paper's security
layer.  Signatures use the classic "hash, pad, modexp" construction
(PKCS#1 v1.5 style padding over SHA-256); encryption uses simple random
padding sufficient for transporting symmetric session keys during the
handshake.

The implementation favours clarity over side-channel resistance — this is
a research reproduction, **not** production cryptography.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

from repro.security.numbers import generate_prime, modinv

__all__ = ["RsaError", "RsaKeyPair", "RsaPublicKey", "DEFAULT_KEY_BITS"]

#: 1024-bit keys were the contemporary choice in 2003 and keep pure-Python
#: keygen fast; tests use smaller keys, benches sweep sizes.
DEFAULT_KEY_BITS = 1024

_PUBLIC_EXPONENT = 65537
_SIG_MARKER = b"\x01"  # domain separation: signature padding
_ENC_MARKER = b"\x02"  # domain separation: encryption padding


class RsaError(Exception):
    """Raised for malformed keys, oversized plaintexts, bad ciphertexts."""


@dataclass(frozen=True)
class RsaPublicKey:
    """The public half (n, e): verify signatures, encrypt session keys."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def fingerprint(self) -> str:
        """Stable short identifier for logs and certificate subjects."""
        blob = self.to_bytes()
        return hashlib.sha256(blob).hexdigest()[:16]

    def to_bytes(self) -> bytes:
        n_raw = self.n.to_bytes(self.byte_length, "big")
        e_raw = self.e.to_bytes((self.e.bit_length() + 7) // 8, "big")
        return (
            len(n_raw).to_bytes(4, "big")
            + n_raw
            + len(e_raw).to_bytes(4, "big")
            + e_raw
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "RsaPublicKey":
        try:
            n_len = int.from_bytes(blob[:4], "big")
            n = int.from_bytes(blob[4 : 4 + n_len], "big")
            offset = 4 + n_len
            e_len = int.from_bytes(blob[offset : offset + 4], "big")
            e = int.from_bytes(blob[offset + 4 : offset + 4 + e_len], "big")
            if offset + 4 + e_len != len(blob):
                raise RsaError("trailing bytes in public key")
        except (IndexError, OverflowError) as exc:
            raise RsaError(f"malformed public key: {exc}") from exc
        if n <= 0 or e <= 0:
            raise RsaError("non-positive key components")
        return cls(n=n, e=e)

    # -- verification / encryption ------------------------------------------

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Check a signature produced by the matching private key."""
        if len(signature) != self.byte_length:
            return False
        sig_int = int.from_bytes(signature, "big")
        if sig_int >= self.n:
            return False
        recovered = pow(sig_int, self.e, self.n)
        expected = int.from_bytes(_pad_digest(message, self.byte_length), "big")
        return recovered == expected

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt a short secret (e.g. a session key) to this key."""
        k = self.byte_length
        limit = k - 11  # 3 fixed bytes + >= 8 random pad bytes
        if len(plaintext) > limit:
            raise RsaError(f"plaintext too long: {len(plaintext)} > {limit}")
        pad_len = k - len(plaintext) - 3
        padding = bytes(
            secrets.randbelow(255) + 1 for _ in range(pad_len)
        )  # nonzero pad bytes
        block = b"\x00" + _ENC_MARKER + padding + b"\x00" + plaintext
        m = int.from_bytes(block, "big")
        return pow(m, self.e, self.n).to_bytes(k, "big")


@dataclass(frozen=True)
class RsaKeyPair:
    """A full RSA key: sign and decrypt.  Create with :meth:`generate`."""

    n: int
    e: int
    d: int

    @classmethod
    def generate(cls, bits: int = DEFAULT_KEY_BITS) -> "RsaKeyPair":
        if bits < 256:
            raise RsaError(f"key too small: {bits} bits (minimum 256)")
        while True:
            p = generate_prime(bits // 2)
            q = generate_prime(bits - bits // 2)
            if p == q:
                continue
            n = p * q
            phi = (p - 1) * (q - 1)
            if phi % _PUBLIC_EXPONENT == 0:
                continue
            d = modinv(_PUBLIC_EXPONENT, phi)
            return cls(n=n, e=_PUBLIC_EXPONENT, d=d)

    @property
    def public(self) -> RsaPublicKey:
        return RsaPublicKey(n=self.n, e=self.e)

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def sign(self, message: bytes) -> bytes:
        """Sign SHA-256(message) with deterministic padding."""
        padded = _pad_digest(message, self.byte_length)
        m = int.from_bytes(padded, "big")
        return pow(m, self.d, self.n).to_bytes(self.byte_length, "big")

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Recover a secret encrypted to our public key."""
        if len(ciphertext) != self.byte_length:
            raise RsaError("ciphertext length mismatch")
        c = int.from_bytes(ciphertext, "big")
        if c >= self.n:
            raise RsaError("ciphertext out of range")
        block = pow(c, self.d, self.n).to_bytes(self.byte_length, "big")
        if block[0:1] != b"\x00" or block[1:2] != _ENC_MARKER:
            raise RsaError("decryption failed: bad padding header")
        try:
            separator = block.index(b"\x00", 2)
        except ValueError:
            raise RsaError("decryption failed: no padding terminator") from None
        if separator < 10:  # fewer than 8 pad bytes
            raise RsaError("decryption failed: short padding")
        return block[separator + 1 :]


def _pad_digest(message: bytes, k: int) -> bytes:
    """PKCS#1 v1.5-style signature block: 00 01 FF..FF 00 || SHA-256."""
    digest = hashlib.sha256(message).digest()
    pad_len = k - len(digest) - 3
    if pad_len < 8:
        raise RsaError(f"key too small for SHA-256 signature: {k} bytes")
    return b"\x00" + _SIG_MARKER + b"\xff" * pad_len + b"\x00" + digest

"""Layer 2 — Security.

The paper's security layer provides host authentication through digital
certificates issued by a grid-wide Certification Authority, user
authentication (userid/password and digital signatures), per-user/per-group
access permissions validated at the originating and destination proxies,
and SSL tunneling of inter-site traffic.

The paper used OpenSSL [8]; offline reproduction substitutes a from-scratch
implementation with the same structure (see DESIGN.md §2):

* :mod:`repro.security.numbers` — modular arithmetic and prime generation;
* :mod:`repro.security.rsa` — RSA keypairs, signatures, key transport;
* :mod:`repro.security.dh` — finite-field Diffie–Hellman;
* :mod:`repro.security.cipher` — authenticated symmetric records
  (SHA-256-CTR keystream + HMAC-SHA-256, encrypt-then-MAC);
* :mod:`repro.security.certs` / :mod:`repro.security.ca` — certificates
  and the grid CA;
* :mod:`repro.security.handshake` — the SSL-like channel handshake;
* :mod:`repro.security.auth` — users, passwords, groups, permissions;
* :mod:`repro.security.tickets` — Kerberos-style session tickets (the
  paper's named future work).

**This code is for research reproduction, not production use.**
"""

from repro.security.auth import (
    AccessControlList,
    AuthenticationError,
    Credential,
    PermissionDenied,
    UserDirectory,
)
from repro.security.ca import CertificationAuthority
from repro.security.certs import Certificate, CertificateError
from repro.security.cipher import CipherError, RecordCipher, SessionKeys
from repro.security.dh import DiffieHellman
from repro.security.handshake import (
    HandshakeError,
    SecureChannel,
    accept_secure,
    connect_secure,
)
from repro.security.rsa import RsaKeyPair, RsaPublicKey
from repro.security.tickets import Ticket, TicketError, TicketService

__all__ = [
    "AccessControlList",
    "AuthenticationError",
    "Certificate",
    "CertificateError",
    "CertificationAuthority",
    "CipherError",
    "Credential",
    "DiffieHellman",
    "HandshakeError",
    "PermissionDenied",
    "RecordCipher",
    "RsaKeyPair",
    "RsaPublicKey",
    "SecureChannel",
    "SessionKeys",
    "Ticket",
    "TicketError",
    "TicketService",
    "UserDirectory",
    "accept_secure",
    "connect_secure",
]

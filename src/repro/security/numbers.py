"""Number-theoretic primitives for the security substrate.

Provides what RSA and Diffie–Hellman need: fast modular exponentiation
(Python's built-in ``pow``), Miller–Rabin primality testing, random prime
generation, and modular inverses.  Primes come from :mod:`secrets` so key
material is unpredictable even though the rest of the library is seeded.
"""

from __future__ import annotations

import secrets

__all__ = [
    "generate_prime",
    "is_probable_prime",
    "modinv",
]

#: Deterministic witnesses make Miller–Rabin *exact* for n < 3.3e24,
#: covering every small-prime case; random witnesses are added on top for
#: larger candidates.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]
_DETERMINISTIC_WITNESSES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41]


def is_probable_prime(n: int, rounds: int = 24) -> bool:
    """Miller–Rabin primality test.

    Deterministic witnesses are always tried; ``rounds`` random witnesses
    are added for numbers beyond the deterministic range.  False positives
    are below 4^-rounds.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n-1 as d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    def witnesses():
        for a in _DETERMINISTIC_WITNESSES:
            yield a
        if n >= 3_317_044_064_679_887_385_961_981:
            for _ in range(rounds):
                yield secrets.randbelow(n - 3) + 2

    for a in witnesses():
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int) -> int:
    """Generate a random prime of exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    while True:
        candidate = secrets.randbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate):
            return candidate


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` modulo ``m`` (extended Euclid).

    Raises ValueError when gcd(a, m) != 1.
    """
    if m <= 0:
        raise ValueError(f"modulus must be positive: {m}")
    old_r, r = a % m, m
    old_s, s = 1, 0
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
    if old_r != 1:
        raise ValueError(f"{a} has no inverse modulo {m}")
    return old_s % m

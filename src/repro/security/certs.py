"""Digital certificates for host authentication.

The paper authenticates hosts "through digital certificates" issued by a
grid-wide Certification Authority.  A :class:`Certificate` binds a subject
name (a proxy or node identity like ``"proxy.siteA"``) and a role to an
RSA public key, signed by the CA; validity is a [not_before, not_after]
interval in seconds (the middleware supplies its clock, wall or simulated).

Certificates serialise through the same gridcodec used on the wire, so a
certificate travels inside handshake frames unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.security.rsa import RsaPublicKey
from repro.transport.frames import decode_value, encode_value

__all__ = ["Certificate", "CertificateError"]


class CertificateError(Exception):
    """Malformed, expired, or wrongly-signed certificate."""


@dataclass(frozen=True)
class Certificate:
    """A CA-signed binding of subject → public key."""

    subject: str
    role: str  # "proxy" | "node" | "user" | "service" | "ca"
    public_key: RsaPublicKey
    issuer: str
    serial: int
    not_before: float
    not_after: float
    signature: bytes = b""

    def tbs_bytes(self) -> bytes:
        """The to-be-signed portion (everything except the signature)."""
        return encode_value(
            {
                "subject": self.subject,
                "role": self.role,
                "public_key": self.public_key.to_bytes(),
                "issuer": self.issuer,
                "serial": self.serial,
                "not_before": self.not_before,
                "not_after": self.not_after,
            }
        )

    def to_bytes(self) -> bytes:
        return encode_value(
            {"tbs": self.tbs_bytes(), "signature": self.signature}
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Certificate":
        try:
            outer = decode_value(blob)
            fields = decode_value(outer["tbs"])
            return cls(
                subject=fields["subject"],
                role=fields["role"],
                public_key=RsaPublicKey.from_bytes(fields["public_key"]),
                issuer=fields["issuer"],
                serial=fields["serial"],
                not_before=fields["not_before"],
                not_after=fields["not_after"],
                signature=outer["signature"],
            )
        except CertificateError:
            raise
        except Exception as exc:
            raise CertificateError(f"malformed certificate: {exc}") from exc

    # -- validation ----------------------------------------------------------

    def verify_signature(self, issuer_key: RsaPublicKey) -> bool:
        return issuer_key.verify(self.tbs_bytes(), self.signature)

    def is_valid_at(self, now: float) -> bool:
        return self.not_before <= now <= self.not_after

    def check(
        self,
        issuer_key: RsaPublicKey,
        now: float,
        expected_role: Optional[str] = None,
    ) -> None:
        """Full validation; raises CertificateError describing the fault."""
        if not self.verify_signature(issuer_key):
            raise CertificateError(
                f"certificate for {self.subject!r}: signature invalid"
            )
        if now < self.not_before:
            raise CertificateError(
                f"certificate for {self.subject!r}: not yet valid"
            )
        if now > self.not_after:
            raise CertificateError(f"certificate for {self.subject!r}: expired")
        if expected_role is not None and self.role != expected_role:
            raise CertificateError(
                f"certificate for {self.subject!r}: role {self.role!r}, "
                f"expected {expected_role!r}"
            )

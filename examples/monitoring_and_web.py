"""Distributed monitoring, failure detection, and the web interface.

Shows the layer-3 services on a live grid:

1. per-site status collection with on-demand global compilation
   (and how a one-site query touches one proxy only);
2. the resource-location service finding stations by capability;
3. the failure detector noticing a dead proxy;
4. the web access interface serving the same data over HTTP.

Run:  python examples/monitoring_and_web.py
"""

import json
import time
import urllib.request

from repro.control.api import GridApi
from repro.control.failure import FailureDetector
from repro.control.info import ResourceLocator, ResourceQuery
from repro.core.grid import Grid
from repro.ui.web import GridWebServer


def main() -> None:
    grid = Grid()
    grid.add_site("alpha", nodes=3, node_speeds=[1.0, 2.0, 4.0])
    grid.add_site("beta", nodes=2, node_speeds=[1.0, 1.0])
    grid.connect_all()
    api = GridApi(grid)

    print("== distributed status collection ==")
    proxy = grid.proxy_of("alpha")
    peer_status = proxy.query_peer_status("proxy.beta")
    print(f"alpha's proxy asked beta's proxy: {len(peer_status)} stations "
          f"(one control round-trip, no node was contacted directly)")
    status = api.grid_state()
    print(f"global compilation: "
          f"{sum(len(v) for v in status.values())} stations from "
          f"{len(status)} sites")

    print("\n== resource location ==")
    locator = ResourceLocator(status)
    fast = locator.find(ResourceQuery(min_cpu_speed=2.0, count=5))
    print("stations with cpu_speed >= 2.0:",
          [e["node"] for e in fast])

    print("\n== failure detection ==")
    detector = FailureDetector(time.time, suspect_after=0.2, dead_after=0.5)
    detector.watch("proxy.beta")
    detector.on_dead.append(lambda p: print(f"detector: {p} declared DEAD"))
    # Silence from beta: no heartbeats arrive.
    time.sleep(0.6)
    detector.check()
    print(f"state of proxy.beta: {detector.state_of('proxy.beta').value}")
    detector.heard_from("proxy.beta")
    print(f"after a heartbeat: {detector.state_of('proxy.beta').value}")

    print("\n== the web access interface ==")
    with GridWebServer(grid) as server:
        print(f"serving at {server.url}")
        with urllib.request.urlopen(f"{server.url}/api/summary", timeout=10) as r:
            print("GET /api/summary ->", json.loads(r.read()))
        with urllib.request.urlopen(
            f"{server.url}/api/station?node=alpha.n2", timeout=10
        ) as r:
            station = json.loads(r.read())
            print(f"GET /api/station?node=alpha.n2 -> cpu×{station['cpu_speed']}, "
                  f"{station['ram_free'] >> 20} MiB free")

    grid.shutdown()
    print("\ndone.")


if __name__ == "__main__":
    main()

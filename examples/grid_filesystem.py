"""The distributed filing system extension.

One of the paper's named future-work directions: files chunked and
replicated across *sites*, reads served from the local replica when one
exists (the proxy architecture's locality principle), and site failures
survived then repaired.

Run:  python examples/grid_filesystem.py
"""

from repro.core.grid import Grid


def main() -> None:
    # Mount the DFS over a real grid: one chunk store per site.
    grid = Grid()
    for site in ["north", "south", "west"]:
        grid.add_site(site, nodes=1)
    grid.connect_all()
    fs = grid.create_filesystem(
        replication=2, chunk_size=64 * 1024, capacity_per_site=64 << 20
    )
    print(f"DFS over sites {fs.sites()}, replication factor 2")

    print("\n== write ==")
    payload = b"simulation checkpoint " * 20_000  # ~430 KiB, 7 chunks
    entry = fs.write("/runs/exp1/checkpoint.dat", payload, site="north")
    print(f"stored {entry.size} B as {entry.chunk_count} chunks")
    for index in range(entry.chunk_count):
        print(f"  chunk {index}: replicas at {entry.sites_for(index)}")

    print("\n== read locality ==")
    fs.read("/runs/exp1/checkpoint.dat", site="north")
    print(f"read from north: {fs.local_chunk_reads} local / "
          f"{fs.remote_chunk_reads} remote chunk fetches")

    print("\n== a whole site dies ==")
    fs.store_of("north").fail()
    data = fs.read("/runs/exp1/checkpoint.dat", site="north")
    print(f"north down — file still reassembles: {len(data)} B intact")

    print("\n== repair ==")
    recreated = fs.re_replicate("north")
    print(f"re-replicated {recreated} chunk copies onto surviving sites")
    fs.store_of("south").fail()
    data = fs.read("/runs/exp1/checkpoint.dat")
    print(f"south down too — still readable after repair: {len(data)} B")

    print("\n== namespace ==")
    fs.store_of("north").recover()
    fs.store_of("south").recover()
    fs.write("/runs/exp1/log.txt", b"hello")
    print("ls /runs/exp1:", fs.ls("/runs/exp1"))
    fs.delete("/runs/exp1/log.txt")
    print("after delete:", fs.ls("/runs/exp1"))

    grid.shutdown()


if __name__ == "__main__":
    main()

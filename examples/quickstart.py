"""Quickstart: build a proxy-based grid and use every basic service.

Walks the architecture end to end in under a minute:

1. create two sites, each with nodes behind a border proxy;
2. interconnect the sites (CA-issued certificates, SSL-like tunnel);
3. register a user and permissions;
4. submit a job locally and across the tunnel (authenticated and
   authorised at both proxies);
5. compile the grid-wide status from the per-site collections.

Run:  python examples/quickstart.py
"""

from repro.control.api import GridApi
from repro.core.grid import Grid


def main() -> None:
    print("== building the grid ==")
    grid = Grid()
    grid.add_site("riverside", nodes=3)
    grid.add_site("hilltop", nodes=2)
    grid.connect_all()
    print(f"sites: {sorted(grid.sites)}")
    print(f"tunnels from riverside's proxy: {grid.proxy_of('riverside').peers()}")

    print("\n== users and permissions ==")
    grid.add_user("alice", "correct-horse")
    grid.grant("user:alice", "site:*", "submit")
    print("alice may submit to any site")

    print("\n== local job (stays inside the site, no encryption) ==")
    result = grid.submit_job(
        "alice", "correct-horse", "sum_range", {"n": 1000}, origin_site="riverside"
    )
    print(f"sum(range(1000)) = {result}")

    print("\n== remote job (crosses the secure tunnel) ==")
    result = grid.submit_job(
        "alice",
        "correct-horse",
        "echo",
        {"value": "hello from hilltop"},
        origin_site="riverside",
        target_site="hilltop",
    )
    print(f"echo via hilltop: {result!r}")

    print("\n== a wrong password is rejected at the origin proxy ==")
    try:
        grid.submit_job("alice", "wrong", "noop", origin_site="riverside")
    except Exception as exc:
        print(f"rejected: {exc}")

    print("\n== usage accounting (reward mechanisms) ==")
    from repro.control.accounting import CreditPolicy

    print(f"ledger: {len(grid.ledger)} jobs recorded")
    print(f"per-user CPU-seconds: "
          f"{ {u: round(s, 4) for u, s in grid.ledger.usage_by_user().items()} }")
    policy = CreditPolicy(rate=1.0)
    balances = policy.settle(grid.ledger)
    print(f"site credit balances (hosting foreign work earns): "
          f"{ {s: round(b, 4) for s, b in balances.items()} }")

    print("\n== grid-wide status (compiled from per-site collections) ==")
    api = GridApi(grid)
    for site, entries in api.grid_state().items():
        nodes = ", ".join(
            f"{e['node']}(cpu×{e['cpu_speed']})" for e in entries
        )
        print(f"  {site}: {nodes}")
    summary = api.summary()
    print(
        f"total: {summary['nodes']} nodes across {summary['sites']} sites, "
        f"{summary['alive_nodes']} alive"
    )

    grid.shutdown()
    print("\ndone.")


if __name__ == "__main__":
    main()

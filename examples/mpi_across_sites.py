"""Unmodified MPI across the grid: the paper's Figure 3 in action.

The same MPI program runs twice:

* on a single site — every message is delivered directly on the LAN
  (Fig. 3a);
* across three sites — the proxies create per-application virtual
  slaves and multiplex the cross-site traffic through the secure
  tunnels (Fig. 3b).

The application code does not change between the runs: that is the
paper's transparency claim.  Afterwards we print what the virtual
slaves forwarded.

Run:  python examples/mpi_across_sites.py
"""

import random

from repro.core.grid import Grid
from repro.mpi.datatypes import SUM


def estimate_pi(comm, samples_per_rank=50_000):
    """Monte-Carlo pi — ordinary MPI code, knows nothing about proxies."""
    rng = random.Random(7_000 + comm.rank)
    hits = sum(
        1
        for _ in range(samples_per_rank)
        if rng.random() ** 2 + rng.random() ** 2 <= 1.0
    )
    total_hits = comm.allreduce(hits, SUM, timeout=120.0)
    return 4.0 * total_hits / (samples_per_rank * comm.size)


def run_single_site() -> None:
    print("== Fig. 3a: one site, all-local delivery ==")
    grid = Grid()
    grid.add_site("cluster", nodes=6)
    try:
        result = grid.run_mpi(estimate_pi, nprocs=6, timeout=300.0)
        result.raise_first()
        print(f"pi ≈ {result.returns[0]:.4f} on placement {result.placement}")
    finally:
        grid.shutdown()


def run_across_sites() -> None:
    print("\n== Fig. 3b: three sites, proxy-multiplexed tunnels ==")
    grid = Grid()
    grid.add_site("north", nodes=2)
    grid.add_site("south", nodes=2)
    grid.add_site("west", nodes=2)
    grid.connect_all()

    slave_report = {}

    def instrumented(comm):
        value = estimate_pi(comm)
        if comm.rank == 0:
            proxy = grid.proxy_of("north")
            with proxy._space_lock:
                space = next(iter(proxy._spaces.values()))
            slave_report["slaves"] = {
                rank: (slave.peer_proxy, slave.forwarded_messages, slave.forwarded_bytes)
                for rank, slave in sorted(space.slaves.items())
            }
        return value

    try:
        result = grid.run_mpi(instrumented, nprocs=6, timeout=300.0)
        result.raise_first()
        print(f"pi ≈ {result.returns[0]:.4f} on placement {result.placement}")
        print("\nvirtual slaves at north's proxy (rank → peer, msgs, bytes):")
        for rank, (peer, messages, nbytes) in slave_report["slaves"].items():
            print(f"  rank {rank}: via {peer}, {messages} msgs, {nbytes} B")
        for peer in grid.proxy_of("north").peers():
            stats = grid.proxy_of("north").tunnel_to(peer).stats
            print(
                f"tunnel north->{peer}: {stats.frames_sent} records out, "
                f"{stats.bytes_sent} B (encrypted)"
            )
    finally:
        grid.shutdown()


if __name__ == "__main__":
    run_single_site()
    run_across_sites()
    print("\nsame MPI function both times — zero code changes.")

"""The security layer, piece by piece.

Demonstrates the paper's layer 2 using the library's primitives directly:

1. a grid-wide Certification Authority issues proxy certificates;
2. two proxies run the SSL-like handshake (both DH and RSA key
   transport) over a raw channel and derive a secure tunnel;
3. tunneled traffic is confidential (headers included) and
   tamper-evident;
4. a revoked certificate is refused at handshake time;
5. Kerberos-style tickets authenticate once per session.

Run:  python examples/secure_tunneling.py
"""

import threading
import time

from repro.security.auth import UserDirectory
from repro.security.ca import CertificationAuthority
from repro.security.handshake import accept_secure, connect_secure
from repro.security.rsa import RsaKeyPair
from repro.security.tickets import TicketService
from repro.transport.frames import Frame, FrameKind
from repro.transport.inproc import channel_pair

KEY_BITS = 512  # small keys keep the demo snappy; see benchmarks for sweeps


def handshake_pair(ca, clock, mode):
    key_a = RsaKeyPair.generate(KEY_BITS)
    key_b = RsaKeyPair.generate(KEY_BITS)
    cert_a = ca.issue("proxy.siteA", "proxy", key_a.public)
    cert_b = ca.issue("proxy.siteB", "proxy", key_b.public)
    raw_a, raw_b = channel_pair("demo")
    result = {}

    def server():
        result["b"] = accept_secure(
            raw_b, key_b, cert_b, ca.public_key, clock
        )

    thread = threading.Thread(target=server)
    thread.start()
    secure_a = connect_secure(
        raw_a, key_a, cert_a, ca.public_key, clock, mode=mode
    )
    thread.join()
    return secure_a, result["b"], raw_b


def main() -> None:
    clock = time.time
    print("== the grid CA ==")
    ca = CertificationAuthority(name="grid-ca", key_bits=KEY_BITS, clock=clock)
    print(f"CA self-signed root: {ca.certificate.subject!r}, "
          f"fingerprint {ca.public_key.fingerprint()}")

    for mode in ["dh", "rsa"]:
        print(f"\n== handshake with {mode.upper()} key exchange ==")
        start = time.perf_counter()
        secure_a, secure_b, raw_b = handshake_pair(ca, clock, mode)
        elapsed = time.perf_counter() - start
        print(f"mutual authentication in {elapsed * 1000:.1f} ms; "
              f"A sees peer {secure_a.peer.subject!r}, "
              f"B sees peer {secure_b.peer.subject!r}")

        secure_a.send(
            Frame(kind=FrameKind.CONTROL,
                  headers={"op": "TOP_SECRET_OPERATION"},
                  payload=b"the payload")
        )
        carrier = raw_b.recv(timeout=5.0)  # what a wire-tapper sees
        leaked = b"TOP_SECRET_OPERATION" in carrier.payload
        print(f"on the wire: {len(carrier.payload)} opaque bytes; "
              f"header leaked? {leaked}")

    print("\n== revocation ==")
    key_c = RsaKeyPair.generate(KEY_BITS)
    cert_c = ca.issue("proxy.compromised", "proxy", key_c.public)
    ca.revoke(cert_c.serial)
    key_b = RsaKeyPair.generate(KEY_BITS)
    cert_b = ca.issue("proxy.siteB2", "proxy", key_b.public)
    raw_c, raw_b2 = channel_pair("revoked")

    def strict_server():
        try:
            accept_secure(
                raw_b2, key_b, cert_b, ca.public_key, clock,
                revocation_check=lambda cert: ca.is_revoked(cert.serial),
            )
        except Exception as exc:
            print(f"server refused the revoked peer: {exc}")

    thread = threading.Thread(target=strict_server)
    thread.start()
    try:
        connect_secure(raw_c, key_c, cert_c, ca.public_key, clock)
    except Exception:
        pass
    thread.join()

    print("\n== session tickets (single authentication per session) ==")
    users = UserDirectory()
    users.add_user("alice", "pw")
    tgs = TicketService(users, clock, key_bits=KEY_BITS)
    ticket = tgs.issue("alice", "pw", rights=["mpi:run", "dfs:read"])
    print(f"ticket for {ticket.userid!r}, rights {ticket.rights}, "
          f"valid {ticket.expires_at - ticket.issued_at:.0f}s")
    for request in range(3):
        tgs.verify(ticket, required_right="mpi:run")  # no password involved
    print("3 requests verified offline — zero re-authentications")


if __name__ == "__main__":
    main()

"""Round-robin vs load-balanced scheduling on a heterogeneous grid.

The paper: "In its original form, the MPI uses the round-robin method to
distribute the processes among the nodes", and proposes a load-balancing
scheduler using the grid's status information instead.  This example
drives both schedulers with the same heavy-tailed job stream over a grid
whose nodes differ 8× in speed, then replays the assignments on the
discrete-event simulator to get true makespans.

Run:  python examples/load_balancing.py
"""

from repro.control.scheduler import (
    LoadBalancedScheduler,
    NodeView,
    RoundRobinScheduler,
)
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStream
from repro.simulation.resources import NodeResources
from repro.workloads.generators import JobStreamSpec, generate_job_stream


def make_nodes():
    """A deliberately lopsided grid: workstations next to a fast cluster."""
    views = []
    for index, speed in enumerate([0.5, 0.5, 1.0, 1.0, 2.0, 4.0]):
        views.append(NodeView(name=f"n{index}", site="grid", speed=speed))
    return views


def replay(assignments, jobs_by_id, speeds) -> float:
    """Run the assignment on the simulator; returns the makespan.

    Each node works through its queue FIFO, one job at a time — the
    execution model a batch node presents.
    """
    sim = Simulator()
    nodes = {
        name: NodeResources(sim, name, cpu_speed=speed)
        for name, speed in speeds.items()
    }
    queues: dict[str, list[float]] = {name: [] for name in speeds}
    for job_id, node_name in assignments:
        queues[node_name].append(jobs_by_id[job_id].work)

    def drain(node, works):
        for work in works:
            yield node.submit(cpu_work=work)

    for name, works in queues.items():
        if works:
            sim.spawn(drain(nodes[name], works), name=f"drain-{name}")
    return sim.run()


def main() -> None:
    stream = generate_job_stream(
        JobStreamSpec(count=120, work_shape=1.4, work_minimum=5.0, ram_bytes=0),
        RandomStream(2003, "lb-demo"),
    )
    jobs = [arrival.job for arrival in stream]
    jobs_by_id = {job.job_id: job for job in jobs}
    total_work = sum(job.work for job in jobs)
    print(f"{len(jobs)} jobs, {total_work:.0f} CPU-seconds of work "
          f"(heavy-tailed: largest {max(j.work for j in jobs):.0f}s)")

    speeds = {view.name: view.speed for view in make_nodes()}
    print(f"nodes: {speeds}")

    results = {}
    for label, scheduler_cls in [
        ("round-robin ", RoundRobinScheduler),
        ("load-balance", LoadBalancedScheduler),
    ]:
        scheduler = scheduler_cls(make_nodes())
        for job in jobs:
            scheduler.assign(job)
        makespan = replay(scheduler.assignments, jobs_by_id, speeds)
        results[label] = makespan
        print(f"{label}: makespan {makespan:8.1f}s "
              f"(model estimate {scheduler.makespan_estimate():.1f}s)")

    speedup = results["round-robin "] / results["load-balance"]
    print(f"\nload balancing finishes {speedup:.2f}x sooner on this grid —")
    print("the gap grows with node heterogeneity and job-size skew.")


if __name__ == "__main__":
    main()
